// EXT — resilience overhead: what does fault tolerance cost on a healthy
// sweep?
//
// Runs the same fault-free mini-plan three ways and compares wall time:
//   bare        the seed harness (direct runner calls, no persistence)
//   resilient   retry/quarantine guard, no journal
//   journaled   guard + write-ahead journal (one atomic CSV per setting)
//   supervised  StudySupervisor with --workers=1: a forked worker process,
//               lease/heartbeat pipe protocol, per-worker journal adopted
//               by the parent — the full isolation stack on one worker
//
// Two runners frame the cost:
//   native  real kernels through the runtime substrate — per-sample times
//           resemble actual collection, and this is where the < 10%
//           acceptance target applies;
//   model   microsecond-scale analytic samples — a deliberate stress test
//           where per-setting fsyncs and CSV serialization have nothing to
//           hide behind (reported for transparency, no target).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "bench_common.hpp"
#include "sim/executor.hpp"
#include "sweep/harness.hpp"
#include "sweep/supervisor.hpp"

namespace {

using namespace omptune;

double time_run(const std::function<sweep::Dataset()>& fn,
                std::size_t* samples) {
  const auto start = std::chrono::steady_clock::now();
  const sweep::Dataset dataset = fn();
  const auto end = std::chrono::steady_clock::now();
  *samples = dataset.size();
  return std::chrono::duration<double>(end - start).count();
}

struct Comparison {
  double bare = 0, resilient = 0, journaled = 0, supervised = 0;
  std::size_t samples = 0;
};

/// Time the three collection modes over `plan` with a fresh runner per run
/// (mirroring independent batch jobs).
Comparison compare(const std::function<std::unique_ptr<sim::Runner>()>& make,
                   const sweep::StudyPlan& plan, int repetitions) {
  const std::uint64_t seed = 0x0417D5EEDull;
  const std::string journal_dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_journal_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(journal_dir);

  Comparison c;
  std::size_t resilient_samples = 0, journaled_samples = 0,
              supervised_samples = 0;
  c.bare = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        return harness.run_study(plan);
      },
      &c.samples);
  c.resilient = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        sweep::StudyRunOptions options;
        options.resilient = true;
        options.resilience.max_retries = 2;
        return harness.run_study(plan, options);
      },
      &resilient_samples);
  c.journaled = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        sweep::StudyRunOptions options;
        options.resilient = true;
        options.resilience.max_retries = 2;
        options.journal_dir = journal_dir;
        return harness.run_study(plan, options);
      },
      &journaled_samples);
  c.supervised = time_run(
      [&] {
        sweep::SupervisorOptions options;
        options.workers = 1;
        options.repetitions = repetitions;
        options.seed = seed;
        options.resilient = true;
        options.resilience.max_retries = 2;
        sweep::StudySupervisor supervisor(make, options);
        return supervisor.run(plan);
      },
      &supervised_samples);

  std::filesystem::remove_all(journal_dir);
  if (c.samples != resilient_samples || c.samples != journaled_samples ||
      c.samples != supervised_samples) {
    std::printf("SAMPLE COUNT MISMATCH — runs are not comparable\n");
    std::exit(1);
  }
  return c;
}

void print_comparison(const char* label, const Comparison& c, int repetitions) {
  std::printf("\n%s — %zu samples per run (%d repetitions each)\n", label,
              c.samples, repetitions);
  std::printf("  %-28s %8.3f s\n", "bare harness", c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "retry/quarantine guard",
              c.resilient, 100.0 * (c.resilient - c.bare) / c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "guard + write-ahead journal",
              c.journaled, 100.0 * (c.journaled - c.bare) / c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "supervisor, --workers=1",
              c.supervised, 100.0 * (c.supervised - c.bare) / c.bare);
}

}  // namespace

int main() {
  bench::print_header("EXT-RESILIENCE",
                      "journal + retry overhead on a fault-free sweep");

  // Warm-up (page in code/data so the first timed run is not penalized).
  {
    sim::ModelRunner runner;
    sweep::SweepHarness harness(runner, 2, 1);
    harness.run_study(sweep::StudyPlan::mini_plan(1, 20));
  }

  // Native mode: wall-clock kernels, the realistic collection cost.
  const Comparison native = compare(
      [] {
        return std::make_unique<sim::NativeRunner>(/*native_scale=*/0.02,
                                                   /*max_threads=*/4);
      },
      sweep::StudyPlan::mini_plan(2, 10), /*repetitions=*/2);
  print_comparison("native runner (acceptance target)", native, 2);

  // Model mode: per-sample cost is microseconds, so journaling has nothing
  // to amortize against — the honest worst case.
  const Comparison model = compare(
      [] { return std::make_unique<sim::ModelRunner>(); },
      sweep::StudyPlan::mini_plan(4, 300), /*repetitions=*/4);
  print_comparison("model runner (stress, no target)", model, 4);

  const double overhead = 100.0 * (native.journaled - native.bare) / native.bare;
  std::printf("\njournaled overhead vs bare, native collection: %.2f%% "
              "(target < 10%%)\n",
              overhead);
  // The process-isolation stack (fork, pipes, heartbeats, journal adopt) is
  // measured against the single-process journaled harness, which does the
  // same persistence work — the delta is pure supervision cost.
  const double supervision =
      100.0 * (native.supervised - native.journaled) / native.journaled;
  std::printf("supervisor --workers=1 vs single-process journaled harness: "
              "%+.2f%% (target < 10%%)\n",
              supervision);
  return overhead < 10.0 && supervision < 10.0 ? 0 : 1;
}
