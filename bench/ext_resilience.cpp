// EXT — resilience overhead: what does fault tolerance cost on a healthy
// sweep?
//
// Runs the same fault-free mini-plan three ways and compares wall time:
//   bare        the seed harness (direct runner calls, no persistence)
//   resilient   retry/quarantine guard, no journal
//   journaled   guard + write-ahead journal (one atomic CSV per setting)
//   supervised  StudySupervisor with --workers=1: a forked worker process,
//               lease/heartbeat pipe protocol, per-worker journal adopted
//               by the parent — the full isolation stack on one worker
//
// Two runners frame the cost:
//   native  real kernels through the runtime substrate — per-sample times
//           resemble actual collection, and this is where the < 10%
//           acceptance target applies;
//   model   microsecond-scale analytic samples — a deliberate stress test
//           where per-setting fsyncs and CSV serialization have nothing to
//           hide behind (reported for transparency, no target).
//
// A fourth leg bounds the crash-consistency injection seam (util::IoHooks,
// DESIGN.md §14). An end-to-end A/B cannot resolve it — the seam costs
// nanoseconds per operation against tens-of-microsecond fsyncs, far below
// run-to-run disk noise — so the gate compares per-operation costs
// directly: the seam consult (measured worst-case, with a pass-through
// hook installed so the consult pays the virtual dispatch; the production
// disabled path pays strictly less) against the measured per-operation
// cost of the journal write path it guards. Gated at < 5%.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "sim/executor.hpp"
#include "sim/storage_chaos.hpp"
#include "sweep/harness.hpp"
#include "sweep/supervisor.hpp"
#include "util/fs.hpp"
#include "util/io_hooks.hpp"

namespace {

using namespace omptune;

double time_run(const std::function<sweep::Dataset()>& fn,
                std::size_t* samples) {
  const auto start = std::chrono::steady_clock::now();
  const sweep::Dataset dataset = fn();
  const auto end = std::chrono::steady_clock::now();
  *samples = dataset.size();
  return std::chrono::duration<double>(end - start).count();
}

struct Comparison {
  double bare = 0, resilient = 0, journaled = 0, supervised = 0;
  std::size_t samples = 0;
};

/// Time the three collection modes over `plan` with a fresh runner per run
/// (mirroring independent batch jobs).
Comparison compare(const std::function<std::unique_ptr<sim::Runner>()>& make,
                   const sweep::StudyPlan& plan, int repetitions) {
  const std::uint64_t seed = 0x0417D5EEDull;
  const std::string journal_dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_journal_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(journal_dir);

  Comparison c;
  std::size_t resilient_samples = 0, journaled_samples = 0,
              supervised_samples = 0;
  c.bare = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        return harness.run_study(plan);
      },
      &c.samples);
  c.resilient = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        sweep::StudyRunOptions options;
        options.resilient = true;
        options.resilience.max_retries = 2;
        return harness.run_study(plan, options);
      },
      &resilient_samples);
  c.journaled = time_run(
      [&] {
        auto runner = make();
        sweep::SweepHarness harness(*runner, repetitions, seed);
        sweep::StudyRunOptions options;
        options.resilient = true;
        options.resilience.max_retries = 2;
        options.journal_dir = journal_dir;
        return harness.run_study(plan, options);
      },
      &journaled_samples);
  c.supervised = time_run(
      [&] {
        sweep::SupervisorOptions options;
        options.workers = 1;
        options.repetitions = repetitions;
        options.seed = seed;
        options.resilient = true;
        options.resilience.max_retries = 2;
        sweep::StudySupervisor supervisor(make, options);
        return supervisor.run(plan);
      },
      &supervised_samples);

  std::filesystem::remove_all(journal_dir);
  if (c.samples != resilient_samples || c.samples != journaled_samples ||
      c.samples != supervised_samples) {
    std::printf("SAMPLE COUNT MISMATCH — runs are not comparable\n");
    std::exit(1);
  }
  return c;
}

/// Pass-through hook: every operation proceeds untouched. Installing it
/// isolates the cost of the seam itself — the production (disabled) path
/// pays strictly less, so gating this bounds both configurations.
class PassThroughHooks : public util::IoHooks {
 public:
  int before(const util::IoSite& site) override {
    (void)site;
    return 0;
  }
};

/// One round of journal-style durability work: `files` atomic CSV-sized
/// replacements plus one durable append per file — the same fs primitives
/// the write-ahead journal and incident log exercise per setting.
double time_hook_shim_round(const std::string& dir, int files) {
  const std::string payload(256, 'x');
  const std::string log_path = dir + "/append.log";
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < files; ++i) {
    util::atomic_write_file(dir + "/rec_" + std::to_string(i % 16) + ".csv",
                            payload);
    util::append_line_durable(log_path, "sample line for the shim bench",
                              /*rotate_at_bytes=*/1 << 16);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Per-operation seam cost vs per-operation journal cost. Deterministic by
/// construction: the numerator is a tight loop over the consult itself
/// (worst case — hook installed, so every consult pays the virtual
/// dispatch), the denominator a fault-free counting pass over the real
/// write path. Returns the ratio as a percentage.
double measure_hook_shim_overhead() {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_hooks_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);

  constexpr int kFiles = 150;

  // Counting pass (doubles as warm-up): how many hooked operations does
  // one round of journal-style work perform?
  sim::StorageChaos counter;  // empty plan: counts ops, injects nothing
  {
    util::ScopedIoHooks scoped(&counter);
    time_hook_shim_round(dir, kFiles);
  }
  const double ops = static_cast<double>(counter.ops_seen());

  // Per-op cost of the real work, hooks disabled (best of 3 rounds).
  double journal = 1e300;
  for (int round = 0; round < 3; ++round) {
    journal = std::min(journal, time_hook_shim_round(dir, kFiles));
  }
  const double journal_per_op = journal / ops;
  std::filesystem::remove_all(dir);

  // Per-op cost of the seam: the atomic load + branch every fs operation
  // pays, plus the virtual dispatch only an installed hook pays.
  PassThroughHooks hook;
  const std::string label = "seam";
  constexpr long kConsults = 20'000'000;
  volatile int sink = 0;
  double seam_per_op = 0;
  {
    util::ScopedIoHooks scoped(&hook);
    const auto start = std::chrono::steady_clock::now();
    for (long i = 0; i < kConsults; ++i) {
      if (util::IoHooks* hooks = util::io_hooks()) {
        util::IoSite site{util::IoOp::Write, label, -1, nullptr, 0};
        sink = sink + hooks->before(site);
      }
    }
    const auto end = std::chrono::steady_clock::now();
    seam_per_op = std::chrono::duration<double>(end - start).count() /
                  static_cast<double>(kConsults);
  }
  (void)sink;

  const double overhead = 100.0 * seam_per_op / journal_per_op;
  std::printf("\nio-hook seam, per hooked operation (%.0f ops per journal "
              "round)\n",
              ops);
  std::printf("  %-28s %10.3f us\n", "journal op (write path)",
              journal_per_op * 1e6);
  std::printf("  %-28s %10.4f us  (hook installed — disabled path is "
              "cheaper)\n",
              "seam consult", seam_per_op * 1e6);
  return overhead;
}

void print_comparison(const char* label, const Comparison& c, int repetitions) {
  std::printf("\n%s — %zu samples per run (%d repetitions each)\n", label,
              c.samples, repetitions);
  std::printf("  %-28s %8.3f s\n", "bare harness", c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "retry/quarantine guard",
              c.resilient, 100.0 * (c.resilient - c.bare) / c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "guard + write-ahead journal",
              c.journaled, 100.0 * (c.journaled - c.bare) / c.bare);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "supervisor, --workers=1",
              c.supervised, 100.0 * (c.supervised - c.bare) / c.bare);
}

}  // namespace

int main() {
  bench::print_header("EXT-RESILIENCE",
                      "journal + retry overhead on a fault-free sweep");

  // Warm-up (page in code/data so the first timed run is not penalized).
  {
    sim::ModelRunner runner;
    sweep::SweepHarness harness(runner, 2, 1);
    harness.run_study(sweep::StudyPlan::mini_plan(1, 20));
  }

  // Native mode: wall-clock kernels, the realistic collection cost.
  const Comparison native = compare(
      [] {
        return std::make_unique<sim::NativeRunner>(/*native_scale=*/0.02,
                                                   /*max_threads=*/4);
      },
      sweep::StudyPlan::mini_plan(2, 10), /*repetitions=*/2);
  print_comparison("native runner (acceptance target)", native, 2);

  // Model mode: per-sample cost is microseconds, so journaling has nothing
  // to amortize against — the honest worst case.
  const Comparison model = compare(
      [] { return std::make_unique<sim::ModelRunner>(); },
      sweep::StudyPlan::mini_plan(4, 300), /*repetitions=*/4);
  print_comparison("model runner (stress, no target)", model, 4);

  const double overhead = 100.0 * (native.journaled - native.bare) / native.bare;
  std::printf("\njournaled overhead vs bare, native collection: %.2f%% "
              "(target < 10%%)\n",
              overhead);
  // The process-isolation stack (fork, pipes, heartbeats, journal adopt) is
  // measured against the single-process journaled harness, which does the
  // same persistence work — the delta is pure supervision cost.
  const double supervision =
      100.0 * (native.supervised - native.journaled) / native.journaled;
  std::printf("supervisor --workers=1 vs single-process journaled harness: "
              "%+.2f%% (target < 10%%)\n",
              supervision);
  const double shim = measure_hook_shim_overhead();
  std::printf("io-hook seam cost per journal write-path operation: %.4f%% "
              "(target < 5%%)\n",
              shim);
  return overhead < 10.0 && supervision < 10.0 && shim < 5.0 ? 0 : 1;
}
