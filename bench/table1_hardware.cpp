// Reproduces Table I: hardware configuration used in this work.

#include "arch/cpu_arch.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE I", "Hardware configuration used in this work");

  util::TextTable table(
      "", {"CPU Architecture", "#Cores", "#Sockets", "#NUMA Nodes",
           "Clock Frequency", "Memory Type", "Memory Capacity"});
  for (const arch::CpuArch& cpu : arch::all_architectures()) {
    table.add_row({
        cpu.description,
        std::to_string(cpu.cores),
        cpu.sockets > 1 ? std::to_string(cpu.sockets) : std::string("-"),
        std::to_string(cpu.numa_nodes),
        util::format_double(cpu.clock_ghz, 1) + " GHz",
        cpu.memory_type,
        std::to_string(cpu.memory_gb),
    });
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper Table I:   A64FX 48/-/4/1.8GHz/HBM/32, Skylake 40/2/2/2.4GHz/DDR4/188,\n"
              "                 Milan 96/2/8/2.3GHz/DDR4/251 — matched by construction.\n");
  return 0;
}
