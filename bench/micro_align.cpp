// Ablation micro-benchmark: KMP_ALIGN_ALLOC — allocation throughput and
// padded-array access for each alignment the sweep explores.

#include <benchmark/benchmark.h>

#include "rt/aligned_alloc.hpp"

namespace {

using namespace omptune;

void BM_Allocate(benchmark::State& state) {
  rt::KmpAllocator alloc(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    void* p = alloc.allocate(192);
    benchmark::DoNotOptimize(p);
    alloc.deallocate(p);
  }
  state.counters["alignment"] = static_cast<double>(state.range(0));
}

void BM_PaddedSlotsWrite(benchmark::State& state) {
  rt::KmpAllocator alloc(static_cast<std::size_t>(state.range(0)));
  rt::KmpArray<double> slots(alloc, 16, /*padded=*/true);
  for (auto _ : state) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i] += static_cast<double>(i);
    }
    benchmark::DoNotOptimize(&slots[0]);
  }
  state.counters["stride_bytes"] = static_cast<double>(slots.stride());
}

BENCHMARK(BM_Allocate)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.2);
BENCHMARK(BM_PaddedSlotsWrite)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
