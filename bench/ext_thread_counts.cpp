// Extension study: dense thread-count exploration — the paper's declared
// limitation ("reduced exploration of thread counts... we will add more
// thread counts"). For each proxy app and architecture: the full scaling
// curve and the recommended team size (smallest within 5% of fastest).

#include "bench_common.hpp"
#include "core/thread_advisor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION",
                      "Dense thread-count exploration (paper future work)");

  sim::PerfModel model;
  util::TextTable table("", {"app", "arch", "fastest threads",
                             "recommended", "speedup@rec", "efficiency@rec"});
  for (const char* app_name : {"xsbench", "rsbench", "su3bench", "lulesh", "ep"}) {
    const auto& app = apps::find_application(app_name);
    for (const auto& cpu : arch::all_architectures()) {
      const rt::RtConfig base = rt::RtConfig::defaults_for(cpu);
      const auto advice =
          core::advise_threads(model, app, app.default_input(), cpu, base);
      const auto rec = *std::find_if(
          advice.curve.begin(), advice.curve.end(), [&advice](const auto& p) {
            return p.threads == advice.recommended_threads;
          });
      table.add_row({app_name, cpu.name, std::to_string(advice.fastest_threads),
                     std::to_string(advice.recommended_threads),
                     util::format_double(rec.speedup_vs_one, 2),
                     util::format_double(rec.parallel_efficiency, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // One full curve for the paper's crossover machine/app pair.
  const auto& xs = apps::find_application("xsbench");
  const auto& milan = arch::architecture(arch::ArchId::Milan);
  const auto advice = core::advise_threads(model, xs, xs.default_input(), milan,
                                           rt::RtConfig::defaults_for(milan));
  std::printf("xsbench on milan, unbound default config:\n");
  for (const auto& point : advice.curve) {
    std::printf("  %3d threads: %7.3f s  speedup %6.2f  efficiency %.2f\n",
                point.threads, point.seconds, point.speedup_vs_one,
                point.parallel_efficiency);
  }
  std::printf("Reading: the memory-bound proxies saturate bandwidth well below\n"
              "the core count — beyond it, queueing contention flattens or\n"
              "inverts the curve (the Milan mechanism behind Table V).\n");
  return 0;
}
