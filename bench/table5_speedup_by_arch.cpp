// Reproduces Table V: per-architecture speedup ranges for the Alignment and
// XSBench benchmarks (the paper's examples of portable vs
// architecture-specific tuning potential).

#include "analysis/speedup.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE V",
                      "Speedup range for different applications on different architectures");

  const auto result = bench::run_full_study();

  struct PaperRow {
    const char* app;
    const char* arch;
    const char* range;
  };
  const PaperRow paper[] = {
      {"alignment", "a64fx", "1.032 - 1.101"},
      {"alignment", "milan", "1.022 - 1.186"},
      {"alignment", "skylake", "1.065 - 1.111"},
      {"xsbench", "a64fx", "1.004 - 1.015"},
      {"xsbench", "milan", "1.016 - 2.602"},
      {"xsbench", "skylake", "1.001 - 1.002"},
  };

  util::TextTable table(
      "", {"Application", "Architecture", "Speedup Range (x)", "paper range"});
  for (const PaperRow& row : paper) {
    for (const auto& r : result.ranges_by_arch) {
      if (r.app == row.app && r.arch == row.arch) {
        table.add_row({row.app, row.arch,
                       util::format_double(r.lo, 3) + " - " + util::format_double(r.hi, 3),
                       row.range});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check: Alignment improves consistently on all machines;\n"
              "XSBench only improves substantially on Milan.\n");
  return 0;
}
