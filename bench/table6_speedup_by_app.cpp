// Reproduces Table VI: the range (across architectures and settings) of the
// highest speedup over the default configuration, per application — plus
// the Section V.1 per-architecture summary (min/median/max).

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE VI", "Speedup range for different applications");

  const auto result = bench::run_full_study();

  const std::pair<const char*, const char*> paper[] = {
      {"alignment", "1.022 - 1.186"}, {"bt", "1.027 - 1.185"},
      {"cg", "1.000 - 1.857"},        {"ep", "1.000 - 1.090"},
      {"ft", "1.010 - 1.545"},        {"health", "1.282 - 2.218"},
      {"lu", "1.020 - 1.121"},        {"lulesh", "1.004 - 1.062"},
      {"mg", "1.011 - 2.167"},        {"nqueens", "2.342 - 4.851"},
      {"rsbench", "1.004 - 1.213"},   {"sort", "1.174 - 1.180"},
      {"strassen", "1.023 - 1.025"},  {"su3bench", "1.002 - 2.279"},
      {"xsbench", "1.001 - 2.602"},
  };

  util::TextTable table("", {"Application", "Speedup Range (x)", "paper range"});
  for (const auto& [app, range] : paper) {
    for (const auto& r : result.ranges_by_app) {
      if (r.app == app) {
        table.add_row({app,
                       util::format_double(r.lo, 3) + " - " + util::format_double(r.hi, 3),
                       range});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Section V.1 per-architecture upshot (paper: A64FX max 4.85 med 1.02;\n"
              "Milan max 2.60 med 1.15; Skylake max 3.47 med 1.065):\n");
  for (const auto& u : result.upshot) {
    std::printf("  %-8s min %.3f  median %.3f  max %.3f\n", u.arch.c_str(),
                u.min_best, u.median_best, u.max_best);
  }
  return 0;
}
