// Microbenchmark suite for the runtime's fast primitives — the measured
// source of the perf model's CalibrationTable (DESIGN.md §15).
//
// Measures, on the host:
//   - barrier phase cost per catalogue variant x team size x wait policy,
//     with a winner-per-team-size table;
//   - park/unpark round-trip (futex-style WaitWord) vs the mutex+condvar
//     equivalent it replaced;
//   - contended CAS and fetch-add, and uncontended lock acquire.
//
// Modes:
//   micro_primitives                          print the report
//   micro_primitives --emit-calibration=F     also write a CalibrationTable
//   micro_primitives --json=F                 also write flat metrics JSON
//   micro_primitives --gate=BASELINE.json     fail (exit 1) if any gated
//                                             metric regressed beyond
//                                             --tolerance (default 0.25)
//   micro_primitives --update-baseline=F      write the gate baseline
//   micro_primitives --quick                  CI smoke sizing
//
// Gating compares against the checked-in baseline with a wide relative
// tolerance and only uses scheduling-robust metrics (single-threaded and
// two-thread primitives); oversubscribed barrier timings are reported but
// not gated, because they measure the OS scheduler on small CI hosts.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/calibration.hpp"
#include "rt/team_barrier.hpp"
#include "util/futex.hpp"

namespace {

using namespace omptune;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Barrier round-trips
// ---------------------------------------------------------------------------

rt::WaitBehavior behavior(rt::WaitPolicy policy) {
  rt::WaitBehavior wait;
  wait.policy = policy;
  wait.yield_while_spinning = true;  // oversubscription-safe on small hosts
  return wait;
}

/// Wall-clock microseconds per barrier episode for `team` threads doing
/// `rounds` episodes.
double time_barrier_us(rt::BarrierKind kind, int team, rt::WaitPolicy policy,
                       int rounds) {
  auto barrier = rt::make_team_barrier(kind, team, behavior(policy));
  const auto start = Clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(team));
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&barrier, t, rounds] {
        for (int round = 0; round < rounds; ++round) {
          barrier->arrive_and_wait(t);
        }
      });
    }
  }
  return seconds_since(start) / rounds * 1e6;
}

// ---------------------------------------------------------------------------
// Park/unpark ping-pong: WaitWord (futex path) vs mutex+condvar
// ---------------------------------------------------------------------------

/// Round-trip microseconds of a two-thread ping-pong where each hand-off
/// goes through a kernel park (Passive policy forces the futex path).
double time_park_unpark_us(int round_trips) {
  rt::WaitWord ping;
  rt::WaitWord pong;
  const rt::WaitBehavior passive = behavior(rt::WaitPolicy::Passive);

  const auto start = Clock::now();
  std::jthread other([&ping, &pong, passive, round_trips] {
    for (int i = 1; i <= round_trips; ++i) {
      ping.wait_reached(static_cast<std::uint32_t>(i), passive, nullptr);
      pong.advance_and_wake();
    }
  });
  for (int i = 1; i <= round_trips; ++i) {
    ping.advance_and_wake();
    pong.wait_reached(static_cast<std::uint32_t>(i), passive, nullptr);
  }
  other.join();
  return seconds_since(start) / round_trips * 1e6;
}

/// The same ping-pong through the mutex+condvar machinery the WaitWord
/// replaced.
double time_condvar_us(int round_trips) {
  std::mutex mutex;
  std::condition_variable cv;
  int turn = 0;  // even: main's turn to bump, odd: other's

  const auto start = Clock::now();
  std::jthread other([&] {
    for (int i = 0; i < round_trips; ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return turn % 2 == 1; });
      ++turn;
      cv.notify_one();
    }
  });
  for (int i = 0; i < round_trips; ++i) {
    std::unique_lock<std::mutex> lock(mutex);
    ++turn;
    cv.notify_one();
    cv.wait(lock, [&] { return turn % 2 == 0; });
  }
  other.join();
  return seconds_since(start) / round_trips * 1e6;
}

// ---------------------------------------------------------------------------
// Atomic-op and lock costs
// ---------------------------------------------------------------------------

double time_fetch_add_us(int threads, int ops_per_thread) {
  std::atomic<std::uint64_t> counter{0};
  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter, ops_per_thread] {
        for (int i = 0; i < ops_per_thread; ++i) {
          counter.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  return seconds_since(start) / (static_cast<double>(threads) * ops_per_thread) *
         1e6;
}

double time_cas_us(int threads, int ops_per_thread) {
  std::atomic<std::uint64_t> counter{0};
  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter, ops_per_thread] {
        for (int i = 0; i < ops_per_thread; ++i) {
          std::uint64_t expected = counter.load(std::memory_order_relaxed);
          while (!counter.compare_exchange_weak(expected, expected + 1,
                                                std::memory_order_relaxed)) {
          }
        }
      });
    }
  }
  return seconds_since(start) / (static_cast<double>(threads) * ops_per_thread) *
         1e6;
}

double time_lock_us(int ops) {
  std::mutex mutex;
  const auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    mutex.lock();
    mutex.unlock();
  }
  return seconds_since(start) / ops * 1e6;
}

// ---------------------------------------------------------------------------
// Flat JSON metrics
// ---------------------------------------------------------------------------

std::string to_json(const std::map<std::string, double>& metrics) {
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out << ",\n";
    first = false;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    out << "  \"" << key << "\": " << buffer;
  }
  out << "\n}\n";
  return out.str();
}

std::map<std::string, double> parse_flat_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "micro_primitives: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::map<std::string, double> metrics;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t key_start = line.find('"');
    if (key_start == std::string::npos) continue;
    const std::size_t key_end = line.find('"', key_start + 1);
    const std::size_t colon = line.find(':', key_end);
    if (key_end == std::string::npos || colon == std::string::npos) continue;
    metrics[line.substr(key_start + 1, key_end - key_start - 1)] =
        std::stod(line.substr(colon + 1));
  }
  return metrics;
}

std::string kind_name(rt::BarrierKind kind) { return rt::to_string(kind); }

}  // namespace

int main(int argc, char** argv) {
  std::string emit_calibration;
  std::string json_path;
  std::string gate_path;
  std::string update_baseline;
  double tolerance = 0.25;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--emit-calibration=", 0) == 0) {
      emit_calibration = value_of("--emit-calibration=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
    } else if (arg.rfind("--gate=", 0) == 0) {
      gate_path = value_of("--gate=");
    } else if (arg.rfind("--update-baseline=", 0) == 0) {
      update_baseline = value_of("--update-baseline=");
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(value_of("--tolerance="));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "micro_primitives: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> teams = {2, 4, 8, 16};
  if (hw > 16) teams.push_back(hw);
  const int barrier_rounds = quick ? 200 : 2000;
  const int pingpong_rounds = quick ? 2000 : 20000;
  const int atomic_ops = quick ? 50000 : 500000;

  const rt::BarrierKind kinds[] = {
      rt::BarrierKind::Central, rt::BarrierKind::Tree,
      rt::BarrierKind::Dissemination, rt::BarrierKind::Hybrid};
  const rt::WaitPolicy policies[] = {rt::WaitPolicy::Active,
                                     rt::WaitPolicy::Passive};

  std::map<std::string, double> metrics;
  rt::CalibrationTable table = rt::CalibrationTable::fallback();

  std::printf("micro_primitives: hw_concurrency=%d futex_backend=%s%s\n\n", hw,
              util::futex_backend(), quick ? " (quick)" : "");

  // ---- barrier catalogue sweep -------------------------------------------
  std::printf("barrier phase cost (us/episode, wall-clock, oversubscribed "
              "beyond %d threads)\n", hw);
  std::printf("%-16s", "variant");
  for (int team : teams) std::printf("  t%-8d", team);
  std::printf("\n");
  for (const rt::BarrierKind kind : kinds) {
    for (const rt::WaitPolicy policy : policies) {
      const char* policy_name =
          policy == rt::WaitPolicy::Active ? "active" : "passive";
      std::printf("%-10s/%-5s", kind_name(kind).c_str(), policy_name);
      for (int team : teams) {
        // Small teams always get full rounds: their cells feed the gate, so
        // they must amortize thread-spawn/warm-up identically in quick and
        // full mode. Big oversubscribed teams are report-only.
        const int rounds = team <= 4 ? 2000
                           : team >= 16
                               ? std::max(1, barrier_rounds / 4)
                               : barrier_rounds;
        const double us = time_barrier_us(kind, team, policy, rounds);
        std::printf("  %-9.3f", us);
        const std::string key = "barrier." + kind_name(kind) + "." +
                                policy_name + ".t" + std::to_string(team);
        metrics[key] = us;
        if (policy == rt::WaitPolicy::Active) {
          table.barrier_phase_us[kind_name(kind) + ".t" +
                                 std::to_string(team)] = us;
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nwinner per team size (active policy):\n");
  for (int team : teams) {
    rt::BarrierKind best = rt::BarrierKind::Central;
    double best_us = 0.0;
    bool first = true;
    for (const rt::BarrierKind kind : kinds) {
      const double us = metrics["barrier." + kind_name(kind) + ".active.t" +
                                std::to_string(team)];
      if (first || us < best_us) {
        best = kind;
        best_us = us;
        first = false;
      }
    }
    const double central =
        metrics["barrier.central.active.t" + std::to_string(team)];
    std::printf(
        "  t%-4d %-14s %.3f us  (central: %.3f us, ratio %.2fx)  "
        "auto-picks=%s\n",
        team, kind_name(best).c_str(), best_us, central,
        central / std::max(best_us, 1e-9),
        kind_name(rt::resolve_barrier_kind(rt::BarrierKind::Auto, team))
            .c_str());
  }

  // ---- park/unpark vs condvar --------------------------------------------
  const double park_us = time_park_unpark_us(pingpong_rounds);
  const double condvar_us = time_condvar_us(pingpong_rounds);
  metrics["park_unpark_us"] = park_us;
  metrics["condvar_roundtrip_us"] = condvar_us;
  table.park_unpark_us = park_us;
  table.condvar_roundtrip_us = condvar_us;
  std::printf("\npark/unpark round-trip: %.3f us   mutex+condvar: %.3f us   "
              "(futex %.2fx %s)\n",
              park_us, condvar_us, condvar_us / std::max(park_us, 1e-9),
              park_us <= condvar_us ? "faster" : "SLOWER");

  // ---- atomic ops and lock ------------------------------------------------
  const int contenders = std::min(4, std::max(2, hw));
  const double cas_us = time_cas_us(contenders, atomic_ops / contenders);
  const double fadd_us = time_fetch_add_us(contenders, atomic_ops / contenders);
  const double lock_us = time_lock_us(atomic_ops);
  metrics["cas_contended_us"] = cas_us;
  metrics["fetch_add_contended_us"] = fadd_us;
  metrics["lock_acquire_us"] = lock_us;
  table.cas_contended_us = cas_us;
  table.fetch_add_contended_us = fadd_us;
  table.lock_acquire_us = lock_us;
  std::printf("contended CAS: %.4f us/op   contended fetch_add: %.4f us/op   "
              "lock acquire: %.4f us\n",
              cas_us, fadd_us, lock_us);

  // ---- outputs ------------------------------------------------------------
  if (!emit_calibration.empty()) {
    table.save(emit_calibration);
    std::printf("\nwrote calibration table: %s\n", emit_calibration.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << to_json(metrics);
    std::printf("wrote metrics: %s\n", json_path.c_str());
  }
  if (!update_baseline.empty()) {
    std::ofstream out(update_baseline, std::ios::trunc);
    out << to_json(metrics);
    std::printf("wrote baseline: %s\n", update_baseline.c_str());
  }

  if (!gate_path.empty()) {
    // Only scheduling-robust metrics participate: primitives that do not
    // depend on running more threads than the host has cores.
    const char* gated[] = {"park_unpark_us", "cas_contended_us",
                           "fetch_add_contended_us", "lock_acquire_us",
                           "barrier.central.active.t2",
                           "barrier.dissemination.active.t2"};
    const std::map<std::string, double> baseline = parse_flat_json(gate_path);
    bool failed = false;
    std::printf("\ngate vs %s (tolerance %.0f%%):\n", gate_path.c_str(),
                tolerance * 100.0);
    for (const char* key : gated) {
      const auto base = baseline.find(key);
      if (base == baseline.end() || metrics.find(key) == metrics.end()) {
        std::printf("  %-36s SKIP (missing)\n", key);
        continue;
      }
      const double ratio = metrics[key] / std::max(base->second, 1e-12);
      const bool ok = ratio <= 1.0 + tolerance;
      std::printf("  %-36s %8.4f vs %8.4f  ratio %.2f  %s\n", key,
                  metrics[key], base->second, ratio, ok ? "ok" : "REGRESSED");
      failed = failed || !ok;
    }
    if (failed) {
      std::printf("gate: FAILED\n");
      return 1;
    }
    std::printf("gate: ok\n");
  }
  return 0;
}
