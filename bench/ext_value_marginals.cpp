// Extension study: per-variable-value marginal speedups — the "qualitative
// relations between features" the paper derives by reading its violins,
// tabulated: for every environment variable value, the median/p95 speedup
// and the optimal share, per architecture.

#include "analysis/marginals.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION", "Marginal speedup per variable value");

  const auto result = bench::run_full_study();
  const auto marginals = analysis::value_marginals(result.dataset);

  for (const char* arch : {"a64fx", "milan", "skylake"}) {
    util::TextTable table(std::string("architecture: ") + arch,
                          {"variable", "value", "median", "p95", "optimal share",
                           "n"});
    for (const auto& row : marginals) {
      if (row.arch != arch) continue;
      table.add_row({row.variable, row.value,
                     util::format_double(row.median_speedup, 3),
                     util::format_double(row.p95_speedup, 3),
                     util::format_double(row.optimal_share, 2),
                     std::to_string(row.samples)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("best value per variable (by median speedup):\n");
  for (const char* arch : {"a64fx", "milan", "skylake"}) {
    for (const char* variable :
         {"OMP_PROC_BIND", "OMP_SCHEDULE", "KMP_LIBRARY", "KMP_BLOCKTIME"}) {
      const auto best = analysis::best_value_of(marginals, arch, variable);
      std::printf("  %-8s %-16s -> %-12s (median %.3f)\n", arch, variable,
                  best.value.c_str(), best.median_speedup);
    }
  }
  return 0;
}
