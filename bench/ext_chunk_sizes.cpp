// Extension study: OMP_SCHEDULE chunk sizes. The paper sweeps only the
// schedule kind ("but no chunk sizes"); this extension sweeps
// dynamic/guided chunk sizes per application and architecture and reports
// where an explicit chunk beats the kind's default chunking.

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION", "OMP_SCHEDULE chunk sizes (omitted by the paper)");

  sim::ModelRunner runner;
  const int chunks[] = {0, 1, 4, 16, 64, 256};

  util::TextTable table("predicted runtime by (schedule, chunk), milan, default input",
                        {"app", "schedule", "best chunk", "default-chunk time",
                         "best-chunk time", "gain"});
  const auto& cpu = arch::architecture(arch::ArchId::Milan);
  for (const char* app_name : {"cg", "mg", "xsbench", "su3bench", "lulesh", "bt"}) {
    const auto& app = apps::find_application(app_name);
    for (const rt::ScheduleKind kind :
         {rt::ScheduleKind::Dynamic, rt::ScheduleKind::Guided}) {
      double default_chunk_time = 0.0;
      double best_time = 1e100;
      int best_chunk = 0;
      for (const int chunk : chunks) {
        rt::RtConfig config;
        config.schedule = kind;
        config.chunk = chunk;
        const double t = runner.model().predict(app, app.default_input(), cpu, config);
        if (chunk == 0) default_chunk_time = t;
        if (t < best_time) {
          best_time = t;
          best_chunk = chunk;
        }
      }
      table.add_row({app_name, rt::to_string(kind),
                     best_chunk == 0 ? "default" : std::to_string(best_chunk),
                     util::format_double(default_chunk_time, 3),
                     util::format_double(best_time, 3),
                     util::format_double(default_chunk_time / best_time, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: dynamic's default chunk of 1 pays a large per-iteration\n"
              "coordination cost on fine-grained loops; moderate chunks recover it.\n"
              "Guided already amortizes, so explicit chunks barely matter there —\n"
              "supporting the paper's decision to sweep kinds only.\n");
  return 0;
}
