// Ablation micro-benchmark: task spawn/steal throughput of the
// work-stealing pool across task granularities and wait policies — the
// substrate behind the BOTS results (NQueens' turnaround win).

#include <benchmark/benchmark.h>

#include <atomic>

#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace {

using namespace omptune;

void run_tasks(benchmark::State& state, rt::LibraryMode library, int work_per_task) {
  constexpr int kThreads = 4;
  constexpr int kTasks = 512;
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
  config.num_threads = kThreads;
  config.library = library;
  rt::ThreadTeam team(cpu, config);

  std::atomic<long> sink{0};
  for (auto _ : state) {
    team.parallel([&sink, work_per_task](rt::TeamContext& ctx) {
      ctx.run_task_root([&ctx, &sink, work_per_task] {
        for (int i = 0; i < kTasks; ++i) {
          ctx.spawn([&sink, work_per_task, i] {
            long acc = 0;
            for (int r = 0; r < work_per_task; ++r) acc += i ^ r;
            sink.fetch_add(acc, std::memory_order_relaxed);
          });
        }
      });
    });
  }
  const auto stats = team.stats().tasks;
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(stats.executed), benchmark::Counter::kIsRate);
  state.counters["steals"] = static_cast<double>(stats.steals);
  state.counters["idle_polls"] = static_cast<double>(stats.idle_polls);
}

void BM_Tasks_Fine_Throughput(benchmark::State& state) {
  run_tasks(state, rt::LibraryMode::Throughput, 16);
}
void BM_Tasks_Fine_Turnaround(benchmark::State& state) {
  run_tasks(state, rt::LibraryMode::Turnaround, 16);
}
void BM_Tasks_Coarse_Throughput(benchmark::State& state) {
  run_tasks(state, rt::LibraryMode::Throughput, 4096);
}
void BM_Tasks_Coarse_Turnaround(benchmark::State& state) {
  run_tasks(state, rt::LibraryMode::Turnaround, 4096);
}

BENCHMARK(BM_Tasks_Fine_Throughput)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Tasks_Fine_Turnaround)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Tasks_Coarse_Throughput)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Tasks_Coarse_Turnaround)->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
