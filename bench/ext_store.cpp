// EXT — columnar store: what does the .omps binary format buy over the CSV
// the journal writes?
//
// Builds a synthetic 100k-sample study dataset, persists it both ways, and
// times the three read paths an operator actually uses:
//   csv load     Dataset::load_csv_file   (parse + validate every cell)
//   store load   Dataset::load_store      (checksum-verify + materialize)
//   store query  StoreReader::query       (index one (app, arch) pair)
//
// Acceptance gates (exit code 1 on miss):
//   - store load at least 10x faster than the CSV parse;
//   - an indexed query reads ONLY the matching rows' runtime bytes — the
//     other ~99% of the runtime block is never touched.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "store/reader.hpp"
#include "sweep/dataset.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

using namespace omptune;

/// Synthetic study-shaped dataset: realistic dictionaries and cardinalities
/// (a few archs/apps/inputs, hundreds of configs per setting), sized to
/// `target` samples.
sweep::Dataset synthetic_dataset(std::size_t target) {
  const char* archs[] = {"a64fx", "milan", "skylake"};
  const char* apps[] = {"alignment", "bt", "cg", "ep", "ft", "health",
                        "lu", "lulesh", "mg", "nqueens", "rsbench", "xsbench"};
  const char* inputs[] = {"small", "medium", "large"};
  const std::size_t settings = 3 * 12 * 3;
  const std::size_t configs = (target + settings - 1) / settings;

  util::Xoshiro256 rng(42);
  sweep::Dataset dataset;
  for (const char* arch : archs) {
    for (const char* app : apps) {
      for (const char* input : inputs) {
        for (std::size_t c = 0; c < configs; ++c) {
          sweep::Sample s;
          s.arch = arch;
          s.app = app;
          s.suite = "synthetic";
          s.kind = c % 2 == 0 ? "loop" : "task";
          s.input = input;
          s.threads = 48;
          s.config.num_threads = 48;
          s.config.places = static_cast<arch::PlacesKind>(rng.uniform_index(6));
          s.config.bind = static_cast<arch::BindKind>(rng.uniform_index(6));
          s.config.schedule = static_cast<rt::ScheduleKind>(rng.uniform_index(4));
          s.config.chunk = static_cast<int>(rng.uniform_index(4)) * 8;
          s.config.library = static_cast<rt::LibraryMode>(rng.uniform_index(3));
          s.config.blocktime_ms = static_cast<std::int64_t>(rng.uniform_index(5)) * 100;
          s.config.reduction =
              static_cast<rt::ReductionMethod>(rng.uniform_index(4));
          s.config.align_alloc = 64 << rng.uniform_index(4);
          for (int r = 0; r < 4; ++r) {
            s.runtimes.push_back(rng.uniform(0.1, 4.0));
          }
          s.mean_runtime = (s.runtimes[0] + s.runtimes[1] + s.runtimes[2] +
                            s.runtimes[3]) / 4.0;
          s.default_runtime = 1.7;
          s.speedup = s.default_runtime / s.mean_runtime;
          s.is_default = c == 0;
          dataset.add(std::move(s));
          if (dataset.size() == target) return dataset;
        }
      }
    }
  }
  return dataset;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::print_header("EXT-STORE",
                      "binary columnar store vs CSV on a 100k-sample dataset");

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_store_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string csv_path = util::path_join(dir, "study.csv");
  const std::string store_path = util::path_join(dir, "study.omps");

  const sweep::Dataset dataset = synthetic_dataset(100000);
  dataset.to_csv().write_file(csv_path);
  dataset.save_store(store_path);
  std::printf("\n%zu samples, %zu settings\n", dataset.size(),
              store::StoreReader(store_path).settings().size());
  std::printf("  %-24s %9.2f MiB\n", "csv file",
              static_cast<double>(std::filesystem::file_size(csv_path)) /
                  (1024.0 * 1024.0));
  std::printf("  %-24s %9.2f MiB\n", "store file",
              static_cast<double>(std::filesystem::file_size(store_path)) /
                  (1024.0 * 1024.0));

  // Warm both files into the page cache so the comparison is parse cost,
  // not first-touch disk latency.
  (void)sweep::Dataset::load_csv_file(csv_path);
  (void)sweep::Dataset::load_store(store_path);

  auto start = std::chrono::steady_clock::now();
  const sweep::Dataset from_csv = sweep::Dataset::load_csv_file(csv_path);
  const double csv_seconds = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const sweep::Dataset from_store = sweep::Dataset::load_store(store_path);
  const double store_seconds = seconds_since(start);

  if (from_csv.size() != dataset.size() || from_store.size() != dataset.size()) {
    std::printf("SAMPLE COUNT MISMATCH — loads are not comparable\n");
    return 1;
  }

  const double speedup = csv_seconds / store_seconds;
  std::printf("\nfull-dataset load (parse + validate all %zu samples):\n",
              dataset.size());
  std::printf("  %-24s %9.3f s\n", "csv", csv_seconds);
  std::printf("  %-24s %9.3f s  (%.1fx faster)\n", "store", store_seconds,
              speedup);

  // Indexed query: one (app, arch) pair out of 36.
  const store::StoreReader reader(store_path);
  store::StoreQuery query;
  query.app = "nqueens";
  query.arch = "milan";
  start = std::chrono::steady_clock::now();
  const sweep::Dataset slice = reader.query(query);
  const double query_seconds = seconds_since(start);

  std::uint64_t matched_runtime_bytes = 0;
  for (const sweep::Sample& s : slice.samples()) {
    matched_runtime_bytes += 8u * s.runtimes.size();
  }
  const std::uint64_t total_runtime_bytes =
      static_cast<std::uint64_t>(reader.size()) * reader.repetitions() * 8;
  const double touched_pct = 100.0 *
                             static_cast<double>(reader.runtime_bytes_touched()) /
                             static_cast<double>(total_runtime_bytes);
  std::printf("\nindexed query (nqueens on milan, %zu of %zu samples):\n",
              slice.size(), reader.size());
  std::printf("  %-24s %9.3f ms\n", "query time", query_seconds * 1000.0);
  std::printf("  %-24s %9llu of %llu (%.2f%%)\n", "runtime bytes read",
              static_cast<unsigned long long>(reader.runtime_bytes_touched()),
              static_cast<unsigned long long>(total_runtime_bytes), touched_pct);

  std::filesystem::remove_all(dir);

  const bool load_ok = speedup >= 10.0;
  const bool query_ok =
      slice.size() > 0 &&
      reader.runtime_bytes_touched() == matched_runtime_bytes;
  std::printf("\nstore load >= 10x csv: %s   query reads only matching "
              "runtime blocks: %s\n",
              load_ok ? "PASS" : "FAIL", query_ok ? "PASS" : "FAIL");
  return load_ok && query_ok ? 0 : 1;
}
