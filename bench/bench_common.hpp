#pragma once

// Shared plumbing for the table/figure reproduction binaries: each bench
// regenerates the data it needs (full study in model mode — seconds) and
// prints the same rows/series the paper reports, side by side with the
// paper's published values where applicable.

#include <cstdio>
#include <string>

#include "core/study.hpp"
#include "sim/executor.hpp"
#include "sweep/harness.hpp"

namespace omptune::bench {

/// Run the full paper-scale study once (Table II: 243,759 samples).
inline core::StudyResult run_full_study(bool verbose = false) {
  sim::ModelRunner runner;
  core::Study study(runner);
  if (verbose) {
    return study.run_paper_study(
        [](const std::string& line) { std::fprintf(stderr, "  %s\n", line.c_str()); });
  }
  return study.run_paper_study();
}

/// Run just the settings of one application (all architectures).
inline sweep::Dataset run_app_study(const std::string& app_name,
                                    int repetitions = 4) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, repetitions);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    std::vector<sweep::StudySetting> kept;
    std::vector<std::size_t> counts;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      if (arch_plan.settings[i].app->name() == app_name) {
        kept.push_back(arch_plan.settings[i]);
        counts.push_back(arch_plan.configs_per_setting[i]);
      }
    }
    arch_plan.settings = std::move(kept);
    arch_plan.configs_per_setting = std::move(counts);
  }
  return harness.run_study(plan);
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

}  // namespace omptune::bench
