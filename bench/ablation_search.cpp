// Ablation: search-strategy comparison (the paper's concluding proposal) —
// exhaustive ground truth vs random search vs influence-ordered hill
// climbing, per application on Milan. Shows how much of the exhaustive
// optimum the pruned strategies recover and at what evaluation cost.

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("ABLATION", "Search strategies: exhaustive vs random vs pruned hill climb");

  // Influence knowledge from a reduced study (fast).
  sim::ModelRunner study_runner;
  sweep::SweepHarness harness(study_runner, 3);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    for (auto& count : arch_plan.configs_per_setting) count = 150;
  }
  const sweep::Dataset knowledge = harness.run_study(plan);
  const core::KnowledgeBase kb(knowledge);

  const auto& cpu = arch::architecture(arch::ArchId::Milan);
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);

  util::TextTable table(
      "", {"app", "strategy", "speedup", "evals", "% of exhaustive"});
  for (const char* app_name : {"xsbench", "nqueens", "cg", "mg", "lulesh"}) {
    const auto& app = apps::find_application(app_name);
    sim::ModelRunner r1, r2, r3;
    core::Tuner exhaustive_tuner(r1, app, app.default_input(), cpu);
    core::Tuner random_tuner(r2, app, app.default_input(), cpu);
    core::Tuner climb_tuner(r3, app, app.default_input(), cpu);

    const auto truth = exhaustive_tuner.exhaustive(space, cpu.cores);
    const auto random = random_tuner.random_search(space, cpu.cores, 64);
    const auto climbed = climb_tuner.hill_climb(
        space, cpu.cores, kb.variable_priority(app_name, "milan"));

    auto add = [&table, &truth, app_name](const char* strategy,
                                          const core::Tuner::SearchResult& r) {
      table.add_row({app_name, strategy, util::format_double(r.speedup, 3),
                     std::to_string(r.evaluations),
                     util::format_double(100.0 * r.speedup / truth.speedup, 1)});
    };
    add("exhaustive", truth);
    add("random-64", random);
    add("hill-climb", climbed);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Finding: influence-ordered one-variable-at-a-time climbing recovers\n"
              "most of the exhaustive optimum with ~20 evaluations instead of 9216\n"
              "— the paper's search-space pruning proposal, quantified.\n");
  return 0;
}
