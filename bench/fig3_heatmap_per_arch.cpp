// Reproduces Fig. 3: influence heat map with data grouped by ARCHITECTURE
// (applications pooled; the Application column shows workload dependence).

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("FIGURE 3",
                      "Feature influence, data grouped by architecture (darker = more influence)");

  const auto result = bench::run_full_study();
  const auto& map = result.per_arch_influence;

  util::HeatMapRenderer heat("", map.feature_names);
  for (const auto& row : map.rows) heat.add_row(row.group, row.influence);
  std::printf("%s\n", heat.render().c_str());

  std::printf("Shape checks vs the paper:\n"
              " - The thread/binding/placement knobs and the wait-policy pair\n"
              "   (KMP_LIBRARY / KMP_BLOCKTIME, which derive OMP_WAIT_POLICY)\n"
              "   dominate on every architecture.\n"
              " - KMP_FORCE_REDUCTION and KMP_ALIGN_ALLOC have the lowest\n"
              "   relevance under per-architecture grouping.\n");
  return 0;
}
