// Reproduces Fig. 1: the runtime distribution of the full configuration
// sweep for the Alignment benchmark, per architecture and input size, with
// the best configuration of each setting marked — including where each
// setting's winner lands on the other settings (the paper's point: best
// configurations do not transfer across architectures/inputs).

#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "stats/kde.hpp"
#include "util/strings.hpp"

int main() {
  using namespace omptune;
  bench::print_header(
      "FIGURE 1",
      "Full-space runtime distributions, Alignment benchmark (violin data)");

  const sweep::Dataset dataset = bench::run_app_study("alignment");

  // Group samples per (arch, input).
  std::map<std::string, std::vector<const sweep::Sample*>> groups;
  for (const auto& s : dataset.samples()) {
    groups[s.arch + "/" + s.input].push_back(&s);
  }

  // Best configuration per setting.
  std::map<std::string, const sweep::Sample*> best;
  for (const auto& [key, samples] : groups) {
    best[key] = *std::max_element(samples.begin(), samples.end(),
                                  [](const sweep::Sample* a, const sweep::Sample* b) {
                                    return a->speedup < b->speedup;
                                  });
  }

  for (const auto& [key, samples] : groups) {
    std::vector<double> runtimes;
    runtimes.reserve(samples.size());
    for (const auto* s : samples) runtimes.push_back(s->mean_runtime);

    std::printf("\n--- %s  (%zu configurations) ---\n", key.c_str(), samples.size());
    std::printf("%s", stats::render_ascii_violin(runtimes, 12, 48).c_str());
    std::printf("best config: %s  (speedup %.3fx)\n",
                best.at(key)->config.key().c_str(), best.at(key)->speedup);

    // Where does this setting's winner land in the OTHER settings?
    for (const auto& [other_key, other_best] : best) {
      if (other_key == key) continue;
      const auto it = std::find_if(
          samples.begin(), samples.end(), [&](const sweep::Sample* s) {
            rt::RtConfig a = s->config;
            rt::RtConfig b = other_best->config;
            a.num_threads = b.num_threads = 0;  // settings differ in threads
            return a == b;
          });
      if (it != samples.end()) {
        std::printf("  winner of %-22s here: speedup %.3fx (rank-of-best %s)\n",
                    other_key.c_str(), (*it)->speedup,
                    (*it)->speedup >= 0.99 * best.at(key)->speedup ? "near-top"
                                                                   : "NOT top");
      }
    }
  }
  std::printf("\nPaper finding: the best configuration in one (architecture, input)\n"
              "setting is generally not a top contender in the others.\n");
  return 0;
}
