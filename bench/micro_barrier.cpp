// Ablation micro-benchmark: centralized sense-reversing barrier vs the
// combining-tree barrier, across wait policies — the barrier-algorithm
// design choice LLVM/OpenMP exposes via KMP_*_BARRIER_PATTERN.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "rt/barrier.hpp"
#include "rt/tree_barrier.hpp"

namespace {

using namespace omptune;

rt::WaitBehavior behavior(rt::WaitPolicy policy) {
  rt::WaitBehavior wait;
  wait.policy = policy;
  return wait;
}

void BM_CentralBarrier(benchmark::State& state) {
  const int team = static_cast<int>(state.range(0));
  rt::Barrier barrier(team, behavior(rt::WaitPolicy::SpinThenSleep));
  for (auto _ : state) {
    std::vector<std::jthread> threads;
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&barrier] {
        for (int round = 0; round < 100; ++round) barrier.arrive_and_wait();
      });
    }
  }
  state.counters["sleeps"] = static_cast<double>(barrier.sleep_count());
}

void BM_TreeBarrier(benchmark::State& state) {
  const int team = static_cast<int>(state.range(0));
  rt::TreeBarrier barrier(team, behavior(rt::WaitPolicy::SpinThenSleep));
  for (auto _ : state) {
    std::vector<std::jthread> threads;
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&barrier, t] {
        for (int round = 0; round < 100; ++round) barrier.arrive_and_wait(t);
      });
    }
  }
  state.counters["sleeps"] = static_cast<double>(barrier.sleep_count());
}

BENCHMARK(BM_CentralBarrier)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_TreeBarrier)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
