// Ablation micro-benchmark: the full barrier catalogue (central, tree,
// dissemination, flat/hybrid) swept across team sizes {2..hw_concurrency}
// and wait policies — the barrier-algorithm design choice LLVM/OpenMP
// exposes via KMP_*_BARRIER_PATTERN — plus the padded-vs-packed
// TreeBarrier node layout (false-sharing ablation). After the registered
// benchmarks run, a hand-timed winner-per-team-size table is printed next
// to what the Auto heuristic would pick.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rt/team_barrier.hpp"
#include "rt/tree_barrier.hpp"

namespace {

using namespace omptune;

constexpr int kRoundsPerIteration = 100;

rt::WaitBehavior behavior(rt::WaitPolicy policy) {
  rt::WaitBehavior wait;
  wait.policy = policy;
  wait.yield_while_spinning = true;
  return wait;
}

const char* policy_name(rt::WaitPolicy policy) {
  switch (policy) {
    case rt::WaitPolicy::Active: return "active";
    case rt::WaitPolicy::SpinThenSleep: return "spin";
    case rt::WaitPolicy::Passive: return "passive";
  }
  return "?";
}

void run_rounds(rt::TeamBarrier& barrier, int team) {
  std::vector<std::jthread> threads;
  threads.reserve(static_cast<std::size_t>(team));
  for (int t = 0; t < team; ++t) {
    threads.emplace_back([&barrier, t] {
      for (int round = 0; round < kRoundsPerIteration; ++round) {
        barrier.arrive_and_wait(t);
      }
    });
  }
}

void BM_Barrier(benchmark::State& state, rt::BarrierKind kind,
                rt::WaitPolicy policy) {
  const int team = static_cast<int>(state.range(0));
  auto barrier = rt::make_team_barrier(kind, team, behavior(policy));
  for (auto _ : state) {
    run_rounds(*barrier, team);
  }
  state.counters["sleeps"] = static_cast<double>(barrier->sleep_count());
}

/// False-sharing ablation: identical algorithm, padded vs packed node
/// layout (see PaddedSlots in rt/aligned_alloc.hpp).
void BM_TreeBarrierLayout(benchmark::State& state, bool padded) {
  const int team = static_cast<int>(state.range(0));
  rt::TreeBarrier barrier(team, behavior(rt::WaitPolicy::Active), padded);
  for (auto _ : state) {
    run_rounds(barrier, team);
  }
}

std::vector<int> team_sizes() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> sizes;
  for (int size = 2; size <= std::max(2, hw); size *= 2) sizes.push_back(size);
  if (sizes.back() != hw && hw > 2) sizes.push_back(hw);
  return sizes;
}

void register_benchmarks() {
  const rt::BarrierKind kinds[] = {
      rt::BarrierKind::Central, rt::BarrierKind::Tree,
      rt::BarrierKind::Dissemination, rt::BarrierKind::Hybrid};
  const rt::WaitPolicy policies[] = {rt::WaitPolicy::Active,
                                     rt::WaitPolicy::SpinThenSleep,
                                     rt::WaitPolicy::Passive};
  for (const rt::BarrierKind kind : kinds) {
    for (const rt::WaitPolicy policy : policies) {
      const std::string name = std::string("BM_Barrier/") +
                               rt::to_string(kind) + "/" +
                               policy_name(policy);
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(),
          [kind, policy](benchmark::State& state) {
            BM_Barrier(state, kind, policy);
          });
      for (int size : team_sizes()) bench->Arg(size);
      bench->Unit(benchmark::kMillisecond)->MinTime(0.2);
    }
  }
  for (const bool padded : {true, false}) {
    auto* bench = benchmark::RegisterBenchmark(
        padded ? "BM_TreeBarrierLayout/padded" : "BM_TreeBarrierLayout/packed",
        [padded](benchmark::State& state) {
          BM_TreeBarrierLayout(state, padded);
        });
    for (int size : team_sizes()) bench->Arg(size);
    bench->Unit(benchmark::kMillisecond)->MinTime(0.2);
  }
}

/// Quick hand-timed sweep for the winner table (active policy).
double episode_us(rt::BarrierKind kind, int team, int rounds) {
  auto barrier =
      rt::make_team_barrier(kind, team, behavior(rt::WaitPolicy::Active));
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&barrier, t, rounds] {
        for (int round = 0; round < rounds; ++round) {
          barrier->arrive_and_wait(t);
        }
      });
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() /
         rounds * 1e6;
}

void print_winner_table() {
  const rt::BarrierKind kinds[] = {
      rt::BarrierKind::Central, rt::BarrierKind::Tree,
      rt::BarrierKind::Dissemination, rt::BarrierKind::Hybrid};
  std::printf("\nwinner per team size (active policy, %d rounds):\n", 500);
  for (int team : team_sizes()) {
    rt::BarrierKind best = rt::BarrierKind::Central;
    double best_us = 0.0;
    double central_us = 0.0;
    for (const rt::BarrierKind kind : kinds) {
      const double us = episode_us(kind, team, 500);
      if (kind == rt::BarrierKind::Central) central_us = us;
      if (kind == rt::BarrierKind::Central || us < best_us) {
        best = kind;
        best_us = us;
      }
    }
    std::printf("  t%-4d winner=%-14s %8.3f us  central=%8.3f us  "
                "auto-picks=%s\n",
                team, rt::to_string(best).c_str(), best_us, central_us,
                rt::to_string(rt::resolve_barrier_kind(rt::BarrierKind::Auto,
                                                       team))
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_winner_table();
  return 0;
}
