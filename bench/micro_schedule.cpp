// Ablation micro-benchmark: worksharing schedule kinds under balanced and
// imbalanced loops — the mechanism OMP_SCHEDULE tunes. Reports the
// shared-counter coordination operations as a counter.

#include <benchmark/benchmark.h>

#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace {

using namespace omptune;

rt::RtConfig config_for(rt::ScheduleKind kind, int chunk, int threads) {
  rt::RtConfig config = rt::RtConfig::defaults_for(
      arch::architecture(arch::ArchId::Skylake));
  config.num_threads = threads;
  config.schedule = kind;
  config.chunk = chunk;
  config.blocktime_ms = 0;  // be kind to small hosts between iterations
  return config;
}

void run_loop(benchmark::State& state, rt::ScheduleKind kind, int chunk,
              bool imbalanced) {
  constexpr int kThreads = 4;
  constexpr std::int64_t kIters = 1 << 14;
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  rt::ThreadTeam team(cpu, config_for(kind, chunk, kThreads));

  for (auto _ : state) {
    team.parallel([imbalanced](rt::TeamContext& ctx) {
      ctx.parallel_for(0, kIters, [imbalanced](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          // Imbalanced: iteration cost grows with the index (triangular).
          const int reps = imbalanced ? static_cast<int>(i % 64) : 8;
          for (int r = 0; r < reps; ++r) acc += static_cast<double>(i ^ r);
        }
        benchmark::DoNotOptimize(acc);
      });
    });
  }
  state.counters["sync_ops"] = static_cast<double>(team.stats().loop_sync_operations);
  state.counters["regions"] = static_cast<double>(team.stats().parallel_regions);
}

void BM_Schedule_Static_Balanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Static, 0, false);
}
void BM_Schedule_Static_Imbalanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Static, 0, true);
}
void BM_Schedule_Dynamic1_Imbalanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Dynamic, 1, true);
}
void BM_Schedule_Dynamic64_Imbalanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Dynamic, 64, true);
}
void BM_Schedule_Guided_Imbalanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Guided, 0, true);
}
void BM_Schedule_Auto_Imbalanced(benchmark::State& state) {
  run_loop(state, rt::ScheduleKind::Auto, 0, true);
}

BENCHMARK(BM_Schedule_Static_Balanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Schedule_Static_Imbalanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Schedule_Dynamic1_Imbalanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Schedule_Dynamic64_Imbalanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Schedule_Guided_Imbalanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Schedule_Auto_Imbalanced)->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
