// Ablation micro-benchmark: the three reduction algorithms
// (KMP_FORCE_REDUCTION) across team sizes, on the real Reducer.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "rt/aligned_alloc.hpp"
#include "rt/barrier.hpp"
#include "rt/reduction.hpp"

namespace {

using namespace omptune;

void run_reduction(benchmark::State& state, rt::ReductionMethod method) {
  const int team = static_cast<int>(state.range(0));
  rt::KmpAllocator alloc(64);
  rt::WaitBehavior wait;
  wait.policy = rt::WaitPolicy::Active;  // keep the barrier spinning
  rt::Barrier barrier(team, wait);
  rt::Reducer reducer(alloc, team, barrier);

  for (auto _ : state) {
    state.PauseTiming();
    std::vector<double> results(static_cast<std::size_t>(team), 0.0);
    state.ResumeTiming();
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(team));
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&reducer, &results, t, method] {
        double local = t + 1.0;
        for (int round = 0; round < 50; ++round) {
          local = reducer.reduce(t, local * 1e-3, rt::ReduceOp::Sum, method);
        }
        results[static_cast<std::size_t>(t)] = local;
      });
    }
    threads.clear();  // join
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["contended_combines"] =
      static_cast<double>(reducer.contended_combines());
}

void BM_Reduction_Tree(benchmark::State& state) {
  run_reduction(state, rt::ReductionMethod::Tree);
}
void BM_Reduction_Critical(benchmark::State& state) {
  run_reduction(state, rt::ReductionMethod::Critical);
}
void BM_Reduction_Atomic(benchmark::State& state) {
  run_reduction(state, rt::ReductionMethod::Atomic);
}

BENCHMARK(BM_Reduction_Tree)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Reduction_Critical)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Reduction_Atomic)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
