// Reproduces Fig. 6: performance distributions of the full configuration
// sweep for the Health benchmark on all architectures.

#include <map>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"

int main() {
  using namespace omptune;
  bench::print_header("FIGURE 6", "Full-space runtime distributions, Health benchmark");

  const sweep::Dataset dataset = bench::run_app_study("health");
  std::map<std::string, std::vector<double>> groups;
  for (const auto& s : dataset.samples()) {
    groups[s.arch + "/" + s.input].push_back(s.mean_runtime);
  }
  for (const auto& [key, runtimes] : groups) {
    const auto summary = stats::summarize(runtimes);
    std::printf("\n--- %s (%zu configs)  median %.3fs  IQR [%.3f, %.3f] ---\n",
                key.c_str(), runtimes.size(), summary.median, summary.q25,
                summary.q75);
    std::printf("%s", stats::render_ascii_violin(runtimes, 10, 44).c_str());
  }
  std::printf("\nHealth's fine tasks make the wait policy visible as clear modes in\n"
              "the distribution (turnaround vs throughput vs passive).\n");
  return 0;
}
