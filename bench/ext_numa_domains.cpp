// Extension study: OMP_PLACES=numa_domains. The paper omits this value
// because LLVM/OpenMP needs hwloc for it; this reproduction's built-in
// topology provides it, so we can quantify what the omission left on the
// table: per app and architecture, the best configuration with
// numa_domains places vs the best over the paper's place set.

#include <map>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION", "OMP_PLACES=numa_domains (omitted by the paper: hwloc)");

  sim::ModelRunner runner;
  util::TextTable table(
      "best speedup over the default configuration",
      {"app", "arch", "paper place set", "with numa_domains", "delta"});

  for (const char* app_name : {"xsbench", "su3bench", "mg", "cg", "lulesh"}) {
    const auto& app = apps::find_application(app_name);
    for (const auto& cpu : arch::all_architectures()) {
      sweep::ConfigSpace paper_set = sweep::ConfigSpace::paper_space(cpu);
      sweep::ConfigSpace extended = paper_set;
      extended.places.push_back(arch::PlacesKind::NumaDomains);

      auto best_speedup = [&](const sweep::ConfigSpace& space) {
        rt::RtConfig default_config;
        default_config.align_alloc = space.aligns.front();
        const double base = runner.model().predict(app, app.default_input(),
                                                   cpu, default_config);
        double best = base;
        for (const rt::RtConfig& config : space.enumerate(0)) {
          best = std::min(best, runner.model().predict(app, app.default_input(),
                                                       cpu, config));
        }
        return base / best;
      };

      const double with_paper = best_speedup(paper_set);
      const double with_numa = best_speedup(extended);
      table.add_row({app_name, cpu.name, util::format_double(with_paper, 3),
                     util::format_double(with_numa, 3),
                     util::format_double(with_numa - with_paper, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: numa_domains places bind whole NUMA nodes; with spread\n"
              "binding they match cores/sockets placements, so the paper's\n"
              "omission costs little — but they are the natural granularity on\n"
              "NPS4 Milan.\n");
  return 0;
}
