// Extension study: the performance/energy tension of the wait policy —
// grounded in the paper's related work (Nornir, OpenMPE, EDP tuning).
// Turnaround wins wall-clock on fine-grained task apps but burns spinning
// cores; passive waiting saves power but costs time. EDP arbitrates.

#include "bench_common.hpp"
#include "sim/energy_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION", "Energy-delay trade-off of the wait policy");

  sim::EnergyModel energy;

  util::TextTable table("", {"app", "arch", "policy", "time (s)", "avg W",
                             "energy (kJ)", "EDP (kJ*s)", "spin W"});
  struct Policy {
    const char* name;
    rt::LibraryMode library;
    std::int64_t blocktime;
  };
  const Policy policies[] = {
      {"turnaround", rt::LibraryMode::Turnaround, 200},
      {"default (200ms)", rt::LibraryMode::Throughput, 200},
      {"passive (0)", rt::LibraryMode::Throughput, 0},
  };

  for (const char* app_name : {"nqueens", "health", "mg", "ep"}) {
    const auto& app = apps::find_application(app_name);
    for (const arch::ArchId id : {arch::ArchId::A64FX, arch::ArchId::Milan}) {
      const auto& cpu = arch::architecture(id);
      for (const Policy& policy : policies) {
        rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
        config.library = policy.library;
        config.blocktime_ms = policy.blocktime;
        const auto e = energy.estimate(app, app.default_input(), cpu, config);
        table.add_row({app_name, cpu.name, policy.name,
                       util::format_double(e.seconds, 3),
                       util::format_double(e.avg_watts, 0),
                       util::format_double(e.joules / 1000.0, 2),
                       util::format_double(e.edp / 1000.0, 2),
                       util::format_double(e.spin_watts, 0)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: on fine-task apps (nqueens, health) turnaround is both\n"
              "faster AND lower-energy (less time at full tilt dominates the\n"
              "spin waste); on already-balanced apps (ep) the policies tie in\n"
              "time, so passive waiting wins energy — the related work's\n"
              "motivation for runtime-adaptive policies.\n");
  return 0;
}
