// Reproduces Section V.4 (RQ4): trends associated with the worst
// performance — master/primary binding with large thread counts dominates
// the slowest decile.

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("RQ4 (Section V.4)", "Trends associated with the worst performance");

  const auto result = bench::run_full_study();

  util::TextTable table("Condition frequency in the slowest decile vs overall",
                        {"condition", "share in worst", "share overall", "lift"});
  for (const auto& t : result.worst_trends) {
    table.add_row({t.condition, util::format_double(t.share_in_worst, 3),
                   util::format_double(t.share_overall, 3),
                   util::format_double(t.lift, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper finding: master/primary binding with many threads packs the\n"
              "whole team onto the primary's place — the recommended-to-avoid pair.\n");
  return 0;
}
