// Ablation micro-benchmark: fork/join cost of a parallel region under each
// wait policy (KMP_LIBRARY x KMP_BLOCKTIME) — the mechanism behind the
// paper's KMP_BLOCKTIME/KMP_LIBRARY findings. Counts how often workers had
// to fall back to an OS sleep.

#include <benchmark/benchmark.h>

#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace {

using namespace omptune;

void run_regions(benchmark::State& state, rt::LibraryMode library,
                 std::int64_t blocktime_ms) {
  constexpr int kThreads = 4;
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
  config.num_threads = kThreads;
  config.library = library;
  config.blocktime_ms = blocktime_ms;
  rt::ThreadTeam team(cpu, config);

  for (auto _ : state) {
    // Ten back-to-back tiny regions: the fork/join overhead dominates.
    for (int i = 0; i < 10; ++i) {
      team.parallel([](rt::TeamContext& ctx) {
        benchmark::DoNotOptimize(ctx.tid());
      });
    }
  }
  state.counters["barrier_sleeps"] =
      static_cast<double>(team.stats().barrier_sleeps);
  state.counters["regions"] = static_cast<double>(team.stats().parallel_regions);
}

void BM_Regions_Turnaround(benchmark::State& state) {
  run_regions(state, rt::LibraryMode::Turnaround, 200);
}
void BM_Regions_Throughput_Blocktime200(benchmark::State& state) {
  run_regions(state, rt::LibraryMode::Throughput, 200);
}
void BM_Regions_Throughput_BlocktimeInfinite(benchmark::State& state) {
  run_regions(state, rt::LibraryMode::Throughput, rt::kBlocktimeInfinite);
}
void BM_Regions_Throughput_Blocktime0(benchmark::State& state) {
  run_regions(state, rt::LibraryMode::Throughput, 0);
}

BENCHMARK(BM_Regions_Turnaround)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Regions_Throughput_Blocktime200)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Regions_Throughput_BlocktimeInfinite)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Regions_Throughput_Blocktime0)->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
