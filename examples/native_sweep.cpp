// Native mini-sweep: run a small configuration sweep of one application ON
// THIS HOST through the real runtime substrate (no model), demonstrating
// that the kernels genuinely respond to the environment variables. Problem
// sizes are shrunk and thread counts capped so the sweep finishes quickly
// even on small machines.
//
// Usage: native_sweep [app] [threads] [native_scale]
//   defaults: nqueens 4 0.3

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sweep/config_space.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace omptune;
  const std::string app_name = argc > 1 ? argv[1] : "nqueens";
  const int threads = argc > 2 ? std::stoi(argv[2]) : 4;
  const double native_scale = argc > 3 ? std::stod(argv[3]) : 0.3;

  const apps::Application& app = apps::find_application(app_name);
  const apps::InputSize input = app.input_sizes().front();
  const arch::CpuArch& cpu = arch::architecture(arch::ArchId::Skylake);

  // A focused sub-space: the wait-policy and schedule dimensions respond
  // measurably even on small hosts; placement needs real big machines.
  sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  space.places = {arch::PlacesKind::Unset};
  space.binds = {arch::BindKind::Unset};
  space.reductions = {rt::ReductionMethod::Default, rt::ReductionMethod::Atomic};
  space.aligns = {64, 512};

  sim::NativeRunner runner(native_scale, threads);
  struct Row {
    rt::RtConfig config;
    double seconds;
  };
  std::vector<Row> rows;
  std::printf("natively sweeping %zu configurations of %s (%s, %d threads, scale %.3f)...\n",
              space.size(), app_name.c_str(), input.name.c_str(), threads,
              native_scale);
  for (const rt::RtConfig& base : space.enumerate(threads)) {
    // Two repetitions, keep the faster (reduce scheduling noise).
    const double a = runner.run(app, input, cpu, base, 0, 0, 0);
    const double b = runner.run(app, input, cpu, base, 0, 1, 0);
    rows.push_back(Row{base, std::min(a, b)});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds < b.seconds; });

  util::TextTable table("fastest five configurations on this host:",
                        {"rank", "seconds", "config"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, rows.size()); ++i) {
    table.add_row({std::to_string(i + 1), util::format_double(rows[i].seconds, 4),
                   rows[i].config.key()});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("slowest: %.4f s  (%s)\n", rows.back().seconds,
              rows.back().config.key().c_str());
  std::printf("native spread on this host: %.2fx between best and worst\n",
              rows.back().seconds / rows.front().seconds);
  return 0;
}
