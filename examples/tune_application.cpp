// Tuning an application the way the paper recommends:
//  1. run a (reduced) study to learn per-variable influence;
//  2. ask the knowledge base which variables matter for (app, arch);
//  3. hill-climb those variables in influence order — a ~20-evaluation
//     search instead of the 9216-configuration exhaustive sweep;
//  4. compare against the best configuration known from the study.
//
// Usage: tune_application [app] [arch]     (defaults: xsbench milan)

#include <cstdio>
#include <string>

#include "core/study.hpp"
#include "core/tuner.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace omptune;
  const std::string app_name = argc > 1 ? argv[1] : "xsbench";
  const std::string arch_name = argc > 2 ? argv[2] : "milan";

  const arch::CpuArch& cpu = arch::architecture(arch::arch_from_string(arch_name));
  const apps::Application& app = apps::find_application(app_name);

  // 1. Reduced study (about a second in model mode).
  std::printf("learning variable influence from a reduced study...\n");
  sim::ModelRunner study_runner;
  sweep::SweepHarness harness(study_runner, 3);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    for (auto& count : arch_plan.configs_per_setting) count = 150;
  }
  const sweep::Dataset knowledge = harness.run_study(plan);
  const core::KnowledgeBase kb(knowledge);

  // 2. Variable priority for this pair.
  const auto priority = kb.variable_priority(app_name, arch_name);
  std::printf("variable priority for %s on %s:\n ", app_name.c_str(), arch_name.c_str());
  for (const auto& v : priority) std::printf(" %s", v.c_str());
  std::printf("\n\n");

  // 3. Influence-ordered hill climb with a fresh runner.
  sim::ModelRunner tune_runner;
  core::Tuner tuner(tune_runner, app, app.default_input(), cpu);
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  const auto result = tuner.hill_climb(space, cpu.cores, priority);
  std::printf("hill climb: %zu evaluations -> speedup %.3fx over the default\n",
              result.evaluations, result.speedup);
  std::printf("  best config: %s\n\n", result.best_config.key().c_str());

  // 4. Compare with the study's best known configuration for the pair.
  try {
    const double known = kb.best_known_speedup(app_name, arch_name);
    std::printf("study's best known speedup for this pair: %.3fx\n", known);
    std::printf("  config: %s\n", kb.best_known_config(app_name, arch_name).key().c_str());
  } catch (const std::invalid_argument&) {
    std::printf("(pair not covered by the study — e.g. sort/strassen off A64FX)\n");
  }
  return 0;
}
