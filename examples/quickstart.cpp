// Quickstart: configure the runtime from the environment (exactly the
// OMP_*/KMP_* variables the paper studies), run a real kernel through the
// runtime substrate, and ask the performance model how the same
// configuration would behave on the study's three machines.
//
// Try:
//   OMP_NUM_THREADS=4 KMP_LIBRARY=turnaround ./quickstart
//   OMP_PLACES=cores OMP_PROC_BIND=spread OMP_SCHEDULE=guided ./quickstart

#include <chrono>
#include <cstdio>

#include "apps/all_apps.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace omptune;

  // 1. Parse the environment into a runtime configuration (defaults follow
  //    the paper's Section III derivation rules).
  const arch::CpuArch& host_model = arch::architecture(arch::ArchId::Skylake);
  rt::RtConfig config = rt::RtConfig::from_env(host_model);
  if (config.num_threads == 0) config.num_threads = 4;  // sane example default
  std::printf("configuration: %s\n", config.key().c_str());
  std::printf("derived: proc_bind=%s wait_policy=%s reduction(team=%d)=%s\n\n",
              arch::to_string(config.effective_bind()).c_str(),
              config.wait_policy() == rt::WaitPolicy::Active ? "active"
              : config.wait_policy() == rt::WaitPolicy::Passive ? "passive"
                                                                : "spin-then-sleep",
              config.num_threads,
              rt::to_string(config.reduction_method_for(config.num_threads)).c_str());

  // 2. Run the CG kernel natively through the runtime.
  const apps::Application& cg = apps::find_application("cg");
  const apps::InputSize input = cg.input_sizes().front();
  rt::ThreadTeam team(host_model, config);
  const auto start = std::chrono::steady_clock::now();
  const double checksum = cg.run_native(team, input, /*native_scale=*/1.0);
  const auto seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const double reference = cg.run_reference(input, 1.0);
  std::printf("CG (%s): %.3f s on %d threads, checksum %.6f (serial ref %.6f)\n",
              input.name.c_str(), seconds, team.num_threads(), checksum, reference);

  const rt::TeamStats stats = team.stats();
  std::printf("runtime stats: %llu regions, %llu loop sync ops, %llu barrier sleeps\n\n",
              static_cast<unsigned long long>(stats.parallel_regions),
              static_cast<unsigned long long>(stats.loop_sync_operations),
              static_cast<unsigned long long>(stats.barrier_sleeps));

  // 3. Model the same configuration on the paper's three machines.
  sim::PerfModel model;
  std::printf("model projection of this configuration (vs per-arch default):\n");
  for (const arch::CpuArch& cpu : arch::all_architectures()) {
    rt::RtConfig projected = config;
    projected.num_threads = 0;  // use every core of the target
    projected.align_alloc = 0;  // re-derive the cache-line default
    const double t = model.predict(cg, cg.default_input(), cpu, projected);
    const double t_default =
        model.predict(cg, cg.default_input(), cpu, rt::RtConfig::defaults_for(cpu));
    std::printf("  %-8s %7.3f s  (default %7.3f s, ratio %.3f)\n",
                cpu.name.c_str(), t, t_default, t_default / t);
  }
  return 0;
}
