// Regenerate the plot-ready data behind every figure of the paper: violin
// KDE series for Figs 1/5/6/7 and the three influence heat maps (Figs
// 2/3/4), each as CSV plus a gnuplot script — the "visualization tooling"
// the paper open-sources.
//
// Usage: export_figures [out_dir] [configs_per_setting]

#include <cstdio>
#include <string>

#include "analysis/export.hpp"
#include "core/study.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace omptune;
  const std::string out_dir = argc > 1 ? argv[1] : "figures_out";
  const std::size_t cap = argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 400;

  sim::ModelRunner runner;
  core::Study study(runner);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  if (cap > 0) {
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = cap;
    }
  }
  std::printf("running the study (%s scale)...\n", cap > 0 ? "reduced" : "full");
  const core::StudyResult result = study.run(plan);

  std::size_t files = 0;
  for (const char* app : {"alignment", "bt", "health", "rsbench"}) {
    for (const std::string& path :
         analysis::export_violin_figure(result.dataset, app, out_dir)) {
      std::printf("  wrote %s\n", path.c_str());
      ++files;
    }
  }
  for (const auto& [map, name] :
       {std::pair{&result.per_app_influence, "fig2_per_app"},
        std::pair{&result.per_arch_influence, "fig3_per_arch"},
        std::pair{&result.per_arch_app_influence, "fig4_per_arch_app"}}) {
    for (const std::string& path :
         analysis::export_heatmap_figure(*map, name, out_dir)) {
      std::printf("  wrote %s\n", path.c_str());
      ++files;
    }
  }
  std::printf("%zu files in %s; plot with: cd %s && gnuplot -p <script>.gp\n",
              files, out_dir.c_str(), out_dir.c_str());
  return 0;
}
