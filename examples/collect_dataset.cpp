// Reproduce the paper's open-data deliverable: run the full Table II-scale
// sweep (243,759 unique samples across the three architectures) and write
// one CSV dataset per architecture plus a combined file — the tabular form
// the paper open-sources.
//
// Usage: collect_dataset [output_dir] [configs_per_setting]
//   configs_per_setting = 0 (default) keeps the exact Table II counts;
//   a positive value shrinks the study for quick experiments.

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/study.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace omptune;
  const std::string out_dir = argc > 1 ? argv[1] : "dataset_out";
  const std::size_t cap = argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 0;

  std::filesystem::create_directories(out_dir);

  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  if (cap > 0) {
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = cap;
    }
  }

  sim::ModelRunner runner;
  core::Study study(runner);
  std::printf("collecting...\n");
  const core::StudyResult result =
      study.run(plan, [](const std::string& line) { std::printf("  %s\n", line.c_str()); });

  for (const char* arch : {"a64fx", "milan", "skylake"}) {
    const sweep::Dataset slice = result.dataset.filter(
        [arch](const sweep::Sample& s) { return s.arch == arch; });
    const std::string path = out_dir + "/" + arch + "_dataset.csv";
    slice.to_csv().write_file(path);
    std::printf("wrote %-40s (%zu samples)\n", path.c_str(), slice.size());
  }
  const std::string all_path = out_dir + "/full_dataset.csv";
  result.dataset.to_csv().write_file(all_path);
  std::printf("wrote %-40s (%zu samples)\n", all_path.c_str(), result.dataset.size());

  std::printf("\nper-architecture upshot summary:\n");
  for (const auto& u : result.upshot) {
    std::printf("  %-8s min %.3f median %.3f max %.3f\n", u.arch.c_str(),
                u.min_best, u.median_best, u.max_best);
  }
  return 0;
}
