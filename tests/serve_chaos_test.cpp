// The self-healing serve layer under fire (DESIGN.md §13): a Keeper must
// restart a SIGKILLed or wedged server within its backoff budget and boot
// the replacement from the last-known-good (possibly hot-swapped) shard
// set; the server must answer typed DeadlineExceeded when a request blows
// its budget and evict slowloris connections; the retrying client must
// complete 100% of its queries through a wire-chaos proxy that resets,
// truncates, stalls, garbles and duplicates reply frames; and the circuit
// breaker must trip, fast-fail and half-open on a deterministic clock.
//
// Forks real server processes (via serve::Keeper), so this binary is
// registered as ONE ctest entry like supervisor_test.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "serve/client.hpp"
#include "serve/keeper.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "sim/executor.hpp"
#include "sim/wire_chaos.hpp"
#include "store/writer.hpp"
#include "sweep/harness.hpp"
#include "util/fs.hpp"
#include "util/process.hpp"

namespace omptune {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_chaos_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  return dir;
}

sweep::Dataset study_dataset(std::uint64_t seed) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3, seed);
  return harness.run_study(sweep::StudyPlan::mini_plan(2, 6));
}

/// A small study store plus an (app, arch) pair it contains.
struct StoreFixture {
  std::string path;
  std::string app;
  std::string arch;
  sweep::Dataset dataset;

  StoreFixture(const std::string& dir, const std::string& name,
               std::uint64_t seed)
      : path(util::path_join(dir, name)), dataset(study_dataset(seed)) {
    store::write_store(path, dataset);
    app = dataset.samples().front().app;
    arch = dataset.samples().front().arch;
  }
};

/// Server::run() on a background thread (in-process, no Keeper).
struct TestServer {
  serve::Server server;
  std::thread thread;
  std::exception_ptr error;

  TestServer(std::vector<std::string> stores, serve::ServerOptions options)
      : server(std::move(stores), std::move(options)) {
    thread = std::thread([this] {
      try {
        server.run();
      } catch (...) {
        error = std::current_exception();
      }
    });
    const std::int64_t deadline = util::monotonic_ms() + 10000;
    while (!server.ready() && util::monotonic_ms() < deadline) {
      if (error) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (error) std::rethrow_exception(error);
    EXPECT_TRUE(server.ready());
  }

  void stop_and_join() {
    server.request_stop();
    if (thread.joinable()) thread.join();
    if (error) std::rethrow_exception(error);
  }

  ~TestServer() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }
};

/// Keeper::run() on a background thread, with ready/ recovery polling.
struct TestKeeper {
  serve::Keeper keeper;
  std::thread thread;
  int rc = -1;

  explicit TestKeeper(serve::KeeperOptions options)
      : keeper(std::move(options)) {
    thread = std::thread([this] { rc = keeper.run(); });
    EXPECT_TRUE(wait_ready());
  }

  bool wait_ready(std::int64_t timeout_ms = 15000) {
    const std::int64_t deadline = util::monotonic_ms() + timeout_ms;
    while (util::monotonic_ms() < deadline) {
      if (keeper.ready()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return keeper.ready();
  }

  /// Wait until a DIFFERENT child than `old_pid` is up and beating.
  bool wait_respawned(pid_t old_pid, std::int64_t timeout_ms = 15000) {
    const std::int64_t deadline = util::monotonic_ms() + timeout_ms;
    while (util::monotonic_ms() < deadline) {
      const pid_t pid = keeper.child_pid();
      if (pid > 0 && pid != old_pid && keeper.ready()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void stop_and_join() {
    keeper.request_stop();
    if (thread.joinable()) thread.join();
  }

  ~TestKeeper() {
    keeper.request_stop();
    if (thread.joinable()) thread.join();
  }
};

serve::ServerOptions base_server_options(const std::string& socket_path) {
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.threads = 2;
  options.cache_capacity = 256;
  options.drain_timeout_ms = 2000;
  return options;
}

serve::KeeperOptions base_keeper_options(const std::string& dir,
                                         const StoreFixture& store) {
  serve::KeeperOptions options;
  options.server = base_server_options(util::path_join(dir, "srv.sock"));
  options.store_paths = {store.path};
  options.heartbeat_interval_ms = 50;
  options.hang_timeout_ms = 1000;
  options.restart_backoff.base_ms = 50;
  options.restart_backoff.max_ms = 400;
  options.stable_after_ms = 60000;  // never reset the streak mid-test
  options.max_restarts = 50;
  options.incident_log_path = util::path_join(dir, "incidents.log");
  options.pid_file = util::path_join(dir, "server.pid");
  return options;
}

serve::Request recommend_request(const std::string& app,
                                 const std::string& arch) {
  serve::Request request;
  request.type = serve::MsgType::Recommend;
  request.app = app;
  request.arch = arch;
  return request;
}

serve::Client connect_with_retry(const std::string& socket_path,
                                 std::int64_t timeout_ms = 10000) {
  const std::int64_t deadline = util::monotonic_ms() + timeout_ms;
  for (;;) {
    try {
      return serve::Client::connect_unix(socket_path);
    } catch (const serve::ConnectionLost&) {
      if (util::monotonic_ms() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

// ---- wire taxonomy ----------------------------------------------------------

TEST(WireTaxonomy, RetryableAndIdempotentSetsAreExact) {
  using serve::MsgType;
  EXPECT_TRUE(serve::is_retryable_reply(MsgType::Overloaded));
  EXPECT_TRUE(serve::is_retryable_reply(MsgType::DeadlineExceeded));
  EXPECT_FALSE(serve::is_retryable_reply(MsgType::Error));
  EXPECT_FALSE(serve::is_retryable_reply(MsgType::RecommendReply));
  EXPECT_FALSE(serve::is_retryable_reply(MsgType::ShutdownReply));

  EXPECT_TRUE(serve::is_idempotent_request(MsgType::Recommend));
  EXPECT_TRUE(serve::is_idempotent_request(MsgType::BestSetting));
  EXPECT_TRUE(serve::is_idempotent_request(MsgType::Marginal));
  EXPECT_TRUE(serve::is_idempotent_request(MsgType::Stats));
  EXPECT_FALSE(serve::is_idempotent_request(MsgType::Swap));
  EXPECT_FALSE(serve::is_idempotent_request(MsgType::Shutdown));
}

TEST(WireTaxonomy, DeadlineExceededRoundTripsWithEmptyBody) {
  serve::Response reply;
  reply.type = serve::MsgType::DeadlineExceeded;
  reply.generation = 9;
  std::string bytes;
  serve::encode_response(bytes, reply);
  ASSERT_EQ(serve::frame_size(bytes), bytes.size());
  const serve::Response decoded =
      serve::decode_response(std::string_view(bytes).substr(4));
  EXPECT_EQ(decoded.type, serve::MsgType::DeadlineExceeded);
  EXPECT_EQ(decoded.generation, 9u);
}

TEST(WireTaxonomy, StatsReplyCarriesDeadlineAndEvictionCounters) {
  serve::Response reply;
  reply.type = serve::MsgType::StatsReply;
  reply.deadline_exceeded = 17;
  reply.evicted_slow = 4;
  reply.shed = 2;
  reply.swaps = 1;
  std::string bytes;
  serve::encode_response(bytes, reply);
  const serve::Response decoded =
      serve::decode_response(std::string_view(bytes).substr(4));
  EXPECT_EQ(decoded.deadline_exceeded, 17u);
  EXPECT_EQ(decoded.evicted_slow, 4u);
  EXPECT_EQ(decoded.shed, 2u);
  EXPECT_EQ(decoded.swaps, 1u);
}

TEST(Deadline, ComparatorIsStrictlyPast) {
  // Completing exactly AT the deadline is on time; one ms later is not.
  EXPECT_FALSE(serve::Server::past_deadline(100, 100));
  EXPECT_TRUE(serve::Server::past_deadline(101, 100));
  EXPECT_FALSE(serve::Server::past_deadline(99, 100));
  // 0 means "no deadline" no matter the clock.
  EXPECT_FALSE(serve::Server::past_deadline(1 << 30, 0));
}

// ---- wire chaos spec --------------------------------------------------------

TEST(WireChaos, SpecParsesDescribesAndRejectsUnknownKeys) {
  const sim::WireChaosSpec spec = sim::WireChaosSpec::parse(
      "seed=9,reset=0.05,truncate=0.04,stall=0.03,garble=0.02,dup=0.01,"
      "stall_ms=25");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.reset_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.truncate_rate, 0.04);
  EXPECT_DOUBLE_EQ(spec.stall_rate, 0.03);
  EXPECT_DOUBLE_EQ(spec.garble_rate, 0.02);
  EXPECT_DOUBLE_EQ(spec.duplicate_rate, 0.01);
  EXPECT_EQ(spec.stall_ms, 25);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(sim::WireChaosSpec{}.enabled());

  const sim::WireChaosSpec reparsed =
      sim::WireChaosSpec::parse(spec.describe());
  EXPECT_DOUBLE_EQ(reparsed.reset_rate, spec.reset_rate);
  EXPECT_DOUBLE_EQ(reparsed.duplicate_rate, spec.duplicate_rate);

  EXPECT_THROW(sim::WireChaosSpec::parse("explode=1"), std::invalid_argument);
  EXPECT_THROW(sim::WireChaosSpec::parse("reset"), std::invalid_argument);
  EXPECT_THROW(sim::WireChaosSpec::parse("reset=lots"), std::invalid_argument);
}

TEST(WireChaos, DrawScheduleIsDeterministicAndSeedKeyed) {
  sim::WireChaosSpec spec;
  spec.seed = 42;
  spec.reset_rate = spec.truncate_rate = spec.stall_rate = 0.1;
  spec.garble_rate = spec.duplicate_rate = 0.1;
  const sim::WireChaosProxy a("/nonexistent/a", "/nonexistent/up", spec);
  const sim::WireChaosProxy b("/nonexistent/b", "/nonexistent/up", spec);
  spec.seed = 43;
  const sim::WireChaosProxy c("/nonexistent/c", "/nonexistent/up", spec);
  bool seeds_diverged = false;
  int faults = 0;
  for (std::uint64_t frame = 0; frame < 400; ++frame) {
    EXPECT_EQ(a.draw(frame), b.draw(frame));
    if (a.draw(frame) != c.draw(frame)) seeds_diverged = true;
    if (a.draw(frame) != sim::WireFault::None) ++faults;
  }
  EXPECT_TRUE(seeds_diverged);
  // 50% aggregate fault rate over 400 frames: the stream is actually live.
  EXPECT_GT(faults, 100);
  EXPECT_LT(faults, 300);
}

// ---- request deadlines ------------------------------------------------------

TEST(Deadline, BlownBudgetAnswersTypedDeadlineExceeded) {
  const std::string dir = temp_dir("deadline");
  StoreFixture store(dir, "s.omps", 5);
  serve::ServerOptions options =
      base_server_options(util::path_join(dir, "srv.sock"));
  options.request_deadline_ms = 20;
  options.debug_execute_delay_ms = 60;  // every query lands past its budget
  options.cache_capacity = 0;
  TestServer server({store.path}, options);

  serve::Client client =
      serve::Client::connect_unix(options.socket_path);
  const serve::Response reply =
      client.call_one(recommend_request(store.app, store.arch));
  EXPECT_EQ(reply.type, serve::MsgType::DeadlineExceeded);

  serve::Request stats;
  stats.type = serve::MsgType::Stats;
  const serve::Response counters = client.call_one(stats);
  EXPECT_GE(counters.deadline_exceeded, 1u);
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

TEST(Deadline, GenerousBudgetStillAnswersNormally) {
  const std::string dir = temp_dir("deadline_ok");
  StoreFixture store(dir, "s.omps", 5);
  serve::ServerOptions options =
      base_server_options(util::path_join(dir, "srv.sock"));
  options.request_deadline_ms = 30000;
  options.debug_execute_delay_ms = 5;  // approaches the boundary from below
  TestServer server({store.path}, options);

  serve::Client client = serve::Client::connect_unix(options.socket_path);
  const serve::Response reply =
      client.call_one(recommend_request(store.app, store.arch));
  EXPECT_EQ(reply.type, serve::MsgType::RecommendReply);
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

// ---- slowloris eviction -----------------------------------------------------

TEST(Slowloris, StalledPartialFrameIsEvictedHealthyPeersAreNot) {
  const std::string dir = temp_dir("slowloris");
  StoreFixture store(dir, "s.omps", 5);
  serve::ServerOptions options =
      base_server_options(util::path_join(dir, "srv.sock"));
  options.stall_timeout_ms = 150;
  TestServer server({store.path}, options);

  // The attacker: open a connection, send 3 bytes of a frame header, stop.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  const int attacker = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(attacker, 0);
  ASSERT_EQ(::connect(attacker, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char partial[3] = {0x10, 0x00, 0x00};
  ASSERT_TRUE(serve::send_all(attacker, std::string_view(partial, 3)));

  // Meanwhile a healthy client keeps getting answers.
  serve::Client client = serve::Client::connect_unix(options.socket_path);
  EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
            serve::MsgType::RecommendReply);

  // The attacker's socket must be closed by the server within the budget.
  timeval tv{5, 0};
  ::setsockopt(attacker, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char byte;
  const ssize_t n = ::recv(attacker, &byte, 1, 0);
  EXPECT_EQ(n, 0) << "expected eviction (EOF), got " << std::strerror(errno);
  ::close(attacker);

  serve::Request stats;
  stats.type = serve::MsgType::Stats;
  EXPECT_GE(client.call_one(stats).evicted_slow, 1u);
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

TEST(Slowloris, PartialCompletedWithinBudgetIsServed) {
  const std::string dir = temp_dir("slow_ok");
  StoreFixture store(dir, "s.omps", 5);
  serve::ServerOptions options =
      base_server_options(util::path_join(dir, "srv.sock"));
  options.stall_timeout_ms = 2000;
  TestServer server({store.path}, options);

  std::string frame;
  serve::encode_request(frame, recommend_request(store.app, store.arch));
  serve::Client probe = serve::Client::connect_unix(options.socket_path);
  probe.close();  // only needed the path validation

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // Drip the frame in two halves with a pause well under the budget.
  const std::size_t half = frame.size() / 2;
  ASSERT_TRUE(serve::send_all(fd, std::string_view(frame).substr(0, half)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(serve::send_all(fd, std::string_view(frame).substr(half)));

  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string reply_bytes;
  for (;;) {
    const std::size_t total = serve::frame_size(reply_bytes);
    if (total != 0 && reply_bytes.size() >= total) break;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "no reply for the slow-but-legit frame";
    reply_bytes.append(buf, static_cast<std::size_t>(n));
  }
  const serve::Response reply = serve::decode_response(
      std::string_view(reply_bytes).substr(4, serve::frame_size(reply_bytes) - 4));
  EXPECT_EQ(reply.type, serve::MsgType::RecommendReply);
  ::close(fd);
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

// ---- retrying client --------------------------------------------------------

TEST(RetryingClient, RetriesTypedOverloadShedsWithBoundedBackoff) {
  const std::string dir = temp_dir("retry_shed");
  StoreFixture store(dir, "s.omps", 5);
  serve::ServerOptions options =
      base_server_options(util::path_join(dir, "srv.sock"));
  options.max_pending = 0;  // every query is shed: always Overloaded
  TestServer server({store.path}, options);

  std::vector<std::int64_t> slept;
  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.breaker_threshold = 0;
  policy.backoff.base_ms = 10;
  policy.backoff.max_ms = 200;
  serve::RetryingClient client(
      [&] { return serve::Client::connect_unix(options.socket_path); },
      policy, nullptr, [&](std::int64_t ms) { slept.push_back(ms); });

  EXPECT_THROW(client.call_one(recommend_request(store.app, store.arch)),
               serve::RetriesExhaustedError);
  EXPECT_EQ(client.counters().attempts, 4u);
  EXPECT_EQ(client.counters().retries, 3u);
  ASSERT_EQ(slept.size(), 3u);
  std::int64_t prev = 0;
  for (const std::int64_t delay : slept) {
    EXPECT_GE(delay, policy.backoff.base_ms);
    EXPECT_LE(delay, policy.backoff.max_ms);
    if (prev > 0) {
      EXPECT_LE(delay, 3 * prev);
    }
    prev = delay;
  }
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

TEST(RetryingClient, CircuitBreakerTripsFastFailsAndHalfOpens) {
  const std::string dir = temp_dir("breaker");
  StoreFixture store(dir, "s.omps", 5);
  const std::string socket_path = util::path_join(dir, "srv.sock");

  std::int64_t fake_now = 1000;
  serve::RetryPolicy policy;
  policy.max_attempts = 1;  // the breaker counts CALLS, keep them 1:1
  policy.breaker_threshold = 2;
  policy.breaker_cooldown_ms = 500;
  serve::RetryingClient client(
      [&] { return serve::Client::connect_unix(socket_path); }, policy,
      [&] { return fake_now; }, [](std::int64_t) {});
  const serve::Request request = recommend_request(store.app, store.arch);

  // Two failed calls (no server): Closed -> Open.
  EXPECT_THROW(client.call_one(request), serve::RetriesExhaustedError);
  EXPECT_EQ(client.breaker_state(),
            serve::RetryingClient::BreakerState::Closed);
  EXPECT_THROW(client.call_one(request), serve::RetriesExhaustedError);
  EXPECT_EQ(client.breaker_state(), serve::RetryingClient::BreakerState::Open);
  EXPECT_EQ(client.counters().breaker_trips, 1u);

  // While Open and inside the cooldown: fast-fail, no socket traffic.
  const std::uint64_t attempts_before = client.counters().attempts;
  EXPECT_THROW(client.call_one(request), serve::CircuitOpenError);
  EXPECT_EQ(client.counters().attempts, attempts_before);
  EXPECT_EQ(client.counters().breaker_fast_fails, 1u);

  // Cooldown elapses; the half-open probe still finds no server: re-Open.
  fake_now += policy.breaker_cooldown_ms + 1;
  EXPECT_THROW(client.call_one(request), serve::RetriesExhaustedError);
  EXPECT_EQ(client.breaker_state(), serve::RetryingClient::BreakerState::Open);
  EXPECT_EQ(client.counters().breaker_trips, 2u);

  // A server appears; the next probe closes the breaker for good.
  TestServer server({store.path},
                    base_server_options(socket_path));
  fake_now += policy.breaker_cooldown_ms + 1;
  EXPECT_EQ(client.call_one(request).type, serve::MsgType::RecommendReply);
  EXPECT_EQ(client.breaker_state(),
            serve::RetryingClient::BreakerState::Closed);
  EXPECT_EQ(client.call_one(request).type, serve::MsgType::RecommendReply);
  server.stop_and_join();
  std::filesystem::remove_all(dir);
}

TEST(RetryingClient, NonIdempotentBatchesDoNotSilentlyReplay) {
  const std::string dir = temp_dir("nonidem");
  const std::string socket_path = util::path_join(dir, "none.sock");
  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.breaker_threshold = 0;
  serve::RetryingClient client(
      [&] { return serve::Client::connect_unix(socket_path); }, policy,
      nullptr, [](std::int64_t) {});
  serve::Request swap;
  swap.type = serve::MsgType::Swap;
  swap.store_paths = {"x.omps"};
  // No server at all: the connect fails BEFORE anything is sent, so even a
  // Swap may retry — and then exhaust.
  EXPECT_THROW(client.call_one(swap), serve::RetriesExhaustedError);
  std::filesystem::remove_all(dir);
}

// ---- keeper -----------------------------------------------------------------

TEST(Keeper, RestartsSigkilledServerOntoTheSameSocket) {
  const std::string dir = temp_dir("keeper_kill");
  StoreFixture store(dir, "s.omps", 5);
  serve::KeeperOptions options = base_keeper_options(dir, store);
  TestKeeper keeper(options);

  const pid_t first = keeper.keeper.child_pid();
  ASSERT_GT(first, 0);
  EXPECT_EQ(util::read_file(options.pid_file).value_or(""),
            std::to_string(first) + "\n");
  {
    serve::Client client =
        connect_with_retry(options.server.socket_path);
    EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
              serve::MsgType::RecommendReply);
  }

  ASSERT_EQ(::kill(first, SIGKILL), 0);
  ASSERT_TRUE(keeper.wait_respawned(first));
  const pid_t second = keeper.keeper.child_pid();
  EXPECT_NE(second, first);
  EXPECT_EQ(util::read_file(options.pid_file).value_or(""),
            std::to_string(second) + "\n");

  // Same socket path answers again.
  serve::Client client = connect_with_retry(options.server.socket_path);
  EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
            serve::MsgType::RecommendReply);

  const serve::KeeperCounters counters = keeper.keeper.counters();
  EXPECT_GE(counters.crashes, 1u);
  EXPECT_GE(counters.restarts, 1u);
  EXPECT_EQ(counters.hangs, 0u);

  // The incident was durably recorded with its cause.
  const std::string incidents =
      util::read_file(options.incident_log_path).value_or("");
  EXPECT_NE(incidents.find("crash"), std::string::npos) << incidents;
  EXPECT_NE(incidents.find("signal 9"), std::string::npos) << incidents;

  keeper.stop_and_join();
  EXPECT_EQ(keeper.rc, 0);
  // Zero stale-socket leaks, and the pid file is gone.
  EXPECT_FALSE(std::filesystem::exists(options.server.socket_path));
  EXPECT_FALSE(std::filesystem::exists(options.pid_file));
  std::filesystem::remove_all(dir);
}

TEST(Keeper, DetectsWedgedServerByHeartbeatSilence) {
  const std::string dir = temp_dir("keeper_wedge");
  StoreFixture store(dir, "s.omps", 5);
  serve::KeeperOptions options = base_keeper_options(dir, store);
  options.hang_timeout_ms = 600;
  TestKeeper keeper(options);

  const pid_t first = keeper.keeper.child_pid();
  ASSERT_GT(first, 0);
  // Freeze the whole child: heartbeats stop, the process stays alive —
  // exactly what a livelocked IO loop looks like from the outside.
  ASSERT_EQ(::kill(first, SIGSTOP), 0);
  ASSERT_TRUE(keeper.wait_respawned(first));

  const serve::KeeperCounters counters = keeper.keeper.counters();
  EXPECT_GE(counters.hangs, 1u);
  const std::string incidents =
      util::read_file(options.incident_log_path).value_or("");
  EXPECT_NE(incidents.find("hang"), std::string::npos) << incidents;
  EXPECT_NE(incidents.find("no heartbeat for"), std::string::npos)
      << incidents;

  serve::Client client = connect_with_retry(options.server.socket_path);
  EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
            serve::MsgType::RecommendReply);
  keeper.stop_and_join();
  EXPECT_EQ(keeper.rc, 0);
  std::filesystem::remove_all(dir);
}

TEST(Keeper, RestartServesTheHotSwappedGenerationNotTheBootOne) {
  const std::string dir = temp_dir("keeper_swap");
  StoreFixture boot(dir, "boot.omps", 5);
  StoreFixture swapped(dir, "swapped.omps", 1234);
  serve::KeeperOptions options = base_keeper_options(dir, boot);
  TestKeeper keeper(options);

  {
    serve::Client client = connect_with_retry(options.server.socket_path);
    serve::Request swap;
    swap.type = serve::MsgType::Swap;
    swap.store_paths = {swapped.path};
    const serve::Response reply = client.call_one(swap);
    ASSERT_EQ(reply.type, serve::MsgType::SwapReply);
    ASSERT_TRUE(reply.found) << reply.message;
  }
  // The Keeper hears about generation 2 over the pipe.
  const std::int64_t deadline = util::monotonic_ms() + 5000;
  while (keeper.keeper.reported_generation() < 2 &&
         util::monotonic_ms() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(keeper.keeper.reported_generation(), 2u);
  ASSERT_EQ(keeper.keeper.current_store_paths(),
            std::vector<std::string>{swapped.path});

  // Crash NOW: the race the Keeper must win is "swap landed, then death".
  const pid_t first = keeper.keeper.child_pid();
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  ASSERT_TRUE(keeper.wait_respawned(first));

  // The replacement must answer from the SWAPPED store, not the boot one.
  const auto reference = serve::Snapshot::load({swapped.path}, 1);
  const serve::Request request = recommend_request(swapped.app, swapped.arch);
  const serve::Response expected = serve::Server::answer(request, *reference);
  serve::Client client = connect_with_retry(options.server.socket_path);
  const serve::Response reply = client.call_one(request);
  EXPECT_EQ(reply.type, serve::MsgType::RecommendReply);
  EXPECT_EQ(reply.found, expected.found);
  EXPECT_EQ(reply.config_key, expected.config_key);
  EXPECT_DOUBLE_EQ(reply.speedup, expected.speedup);
  keeper.stop_and_join();
  std::filesystem::remove_all(dir);
}

// ---- the headline: chaos ride-through ---------------------------------------

TEST(ChaosRideThrough, ClientCompletesEverythingThroughChaosAndARestart) {
  const std::string dir = temp_dir("ride");
  StoreFixture store(dir, "s.omps", 5);
  serve::KeeperOptions keeper_options = base_keeper_options(dir, store);
  TestKeeper keeper(keeper_options);

  sim::WireChaosSpec spec;
  spec.seed = 11;
  spec.reset_rate = 0.05;
  spec.truncate_rate = 0.05;
  spec.stall_rate = 0.05;
  spec.garble_rate = 0.05;
  spec.duplicate_rate = 0.05;
  spec.stall_ms = 40;
  sim::WireChaosProxy proxy(util::path_join(dir, "proxy.sock"),
                            keeper_options.server.socket_path, spec);
  proxy.start();

  serve::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.socket_timeout_ms = 700;
  policy.breaker_threshold = 0;  // the breaker gets its own test; here we
                                 // must ride through the restart window
  policy.backoff.base_ms = 20;
  policy.backoff.max_ms = 500;
  policy.seed = 7;
  serve::RetryingClient client = serve::RetryingClient::over_unix(
      util::path_join(dir, "proxy.sock"), policy);

  const sweep::Sample& sample = store.dataset.samples().front();
  const int total_calls = 120;
  int completed = 0;
  for (int i = 0; i < total_calls; ++i) {
    if (i == total_calls / 2) {
      // Mid-run, murder the server. The proxy sees a dead upstream, the
      // client sees dropped connections, the Keeper restarts — and no
      // query may be lost.
      const pid_t victim = keeper.keeper.child_pid();
      ASSERT_GT(victim, 0);
      ASSERT_EQ(::kill(victim, SIGKILL), 0);
    }
    serve::Request request;
    switch (i % 4) {
      case 0:
        request = recommend_request(store.app, store.arch);
        break;
      case 1:
        request.type = serve::MsgType::BestSetting;
        request.app = sample.app;
        request.arch = sample.arch;
        request.input = sample.input;
        request.threads = sample.threads;
        break;
      case 2:
        request.type = serve::MsgType::Marginal;
        request.arch = store.arch;
        request.variable = "OMP_PLACES";
        request.value = "cores";
        break;
      default:
        request.type = serve::MsgType::Stats;
        break;
    }
    const serve::Response reply = client.call_one(request);
    EXPECT_FALSE(serve::is_retryable_reply(reply.type));
    EXPECT_NE(reply.type, serve::MsgType::Error)
        << "call " << i << ": " << reply.message;
    ++completed;
  }
  EXPECT_EQ(completed, total_calls);  // 100% completion, by construction

  // The chaos actually happened, and the retry budget absorbed it.
  const sim::WireChaosCounters chaos = proxy.counters();
  EXPECT_GE(chaos.frames, static_cast<std::uint64_t>(total_calls));
  EXPECT_GT(chaos.resets + chaos.truncated + chaos.stalled + chaos.garbled +
                chaos.duplicated,
            5u);
  const serve::RetryCounters& retries = client.counters();
  EXPECT_EQ(retries.calls, static_cast<std::uint64_t>(total_calls));
  EXPECT_GT(retries.retries, 0u);
  EXPECT_LE(retries.attempts,
            static_cast<std::uint64_t>(total_calls) *
                static_cast<std::uint64_t>(policy.max_attempts));
  const serve::KeeperCounters keeper_counters = keeper.keeper.counters();
  EXPECT_GE(keeper_counters.crashes, 1u);
  EXPECT_GE(keeper_counters.restarts, 1u);

  proxy.stop();
  keeper.stop_and_join();
  EXPECT_EQ(keeper.rc, 0);
  EXPECT_FALSE(std::filesystem::exists(keeper_options.server.socket_path));
  EXPECT_FALSE(std::filesystem::exists(util::path_join(dir, "proxy.sock")));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace omptune
