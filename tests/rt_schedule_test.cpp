// Property tests of the worksharing-loop scheduler: for every schedule kind,
// chunk size, team size and trip count, the dealt slices must exactly
// partition the iteration space (coverage + disjointness), and per-kind
// structural properties must hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "rt/schedule.hpp"

namespace omptune::rt {
namespace {

struct ScheduleCase {
  ScheduleKind kind;
  int chunk;
  std::int64_t lo;
  std::int64_t hi;
  int team;
};

std::string case_name(const ::testing::TestParamInfo<ScheduleCase>& info) {
  const ScheduleCase& c = info.param;
  std::string name = to_string(c.kind) + "_chunk" + std::to_string(c.chunk) +
                     "_lo" + std::to_string(c.lo) + "_hi" + std::to_string(c.hi) +
                     "_team" + std::to_string(c.team);
  std::replace(name.begin(), name.end(), '-', 'm');
  return name;
}

class SchedulePartition : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(SchedulePartition, SlicesExactlyPartitionIterationSpace) {
  const ScheduleCase& c = GetParam();
  LoopScheduler sched(c.kind, c.chunk, c.lo, c.hi, c.team);

  // Sequentially drain every thread's stream of slices (round-robin to mix
  // orders for the shared-cursor schedules).
  std::map<std::int64_t, int> covered;
  std::vector<bool> exhausted(static_cast<std::size_t>(c.team), false);
  int remaining_threads = c.team;
  int turn = 0;
  while (remaining_threads > 0) {
    const int tid = turn % c.team;
    ++turn;
    if (exhausted[static_cast<std::size_t>(tid)]) continue;
    const auto slice = sched.next(tid);
    if (!slice) {
      exhausted[static_cast<std::size_t>(tid)] = true;
      --remaining_threads;
      continue;
    }
    ASSERT_FALSE(slice->empty());
    ASSERT_GE(slice->begin, c.lo);
    ASSERT_LE(slice->end, c.hi);
    for (std::int64_t i = slice->begin; i < slice->end; ++i) ++covered[i];
  }

  ASSERT_EQ(covered.size(), static_cast<std::size_t>(std::max<std::int64_t>(0, c.hi - c.lo)));
  for (const auto& [iter, count] : covered) {
    ASSERT_EQ(count, 1) << "iteration " << iter << " dealt " << count << " times";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulePartition,
    ::testing::ValuesIn([] {
      std::vector<ScheduleCase> cases;
      for (const ScheduleKind kind : {ScheduleKind::Static, ScheduleKind::Dynamic,
                                      ScheduleKind::Guided, ScheduleKind::Auto}) {
        for (const int chunk : {0, 1, 3, 16}) {
          for (const auto& [lo, hi] : std::vector<std::pair<std::int64_t, std::int64_t>>{
                   {0, 0}, {0, 1}, {0, 7}, {0, 100}, {5, 104}, {-10, 10}, {0, 1000}}) {
            for (const int team : {1, 2, 3, 8}) {
              cases.push_back({kind, chunk, lo, hi, team});
            }
          }
        }
      }
      return cases;
    }()),
    case_name);

TEST(ScheduleStatic, BlockFormIsContiguousAndBalanced) {
  LoopScheduler sched(ScheduleKind::Static, 0, 0, 103, 4);
  std::vector<LoopSlice> slices;
  for (int tid = 0; tid < 4; ++tid) {
    const auto s = sched.next(tid);
    ASSERT_TRUE(s.has_value());
    slices.push_back(*s);
    EXPECT_FALSE(sched.next(tid).has_value()) << "static block: one slice per thread";
  }
  // 103 = 26+26+26+25; blocks in thread order, contiguous.
  EXPECT_EQ(slices[0], (LoopSlice{0, 26}));
  EXPECT_EQ(slices[1], (LoopSlice{26, 52}));
  EXPECT_EQ(slices[2], (LoopSlice{52, 78}));
  EXPECT_EQ(slices[3], (LoopSlice{78, 103}));
}

TEST(ScheduleStatic, ChunkedFormDealsRoundRobin) {
  LoopScheduler sched(ScheduleKind::Static, 10, 0, 50, 2);
  // Thread 0 owns chunks 0, 2, 4 -> [0,10) [20,30) [40,50).
  EXPECT_EQ(sched.next(0), (LoopSlice{0, 10}));
  EXPECT_EQ(sched.next(0), (LoopSlice{20, 30}));
  EXPECT_EQ(sched.next(0), (LoopSlice{40, 50}));
  EXPECT_FALSE(sched.next(0).has_value());
  // Thread 1 owns chunks 1, 3 -> [10,20) [30,40).
  EXPECT_EQ(sched.next(1), (LoopSlice{10, 20}));
  EXPECT_EQ(sched.next(1), (LoopSlice{30, 40}));
  EXPECT_FALSE(sched.next(1).has_value());
}

TEST(ScheduleDynamic, DefaultChunkIsOne) {
  LoopScheduler sched(ScheduleKind::Dynamic, 0, 0, 5, 2);
  for (int i = 0; i < 5; ++i) {
    const auto s = sched.next(i % 2);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->size(), 1);
  }
  EXPECT_FALSE(sched.next(0).has_value());
}

TEST(ScheduleDynamic, CountsSyncOperations) {
  LoopScheduler sched(ScheduleKind::Dynamic, 1, 0, 100, 4);
  while (sched.next(0)) {
  }
  // One shared-counter operation per grab (plus the final failing grabs).
  EXPECT_GE(sched.sync_operations(), 100u);
}

TEST(ScheduleGuided, PieceSizesDecayGeometrically) {
  const int team = 4;
  LoopScheduler sched(ScheduleKind::Guided, 1, 0, 1024, team);
  std::vector<std::int64_t> sizes;
  while (const auto s = sched.next(0)) sizes.push_back(s->size());
  // First piece = remaining/(2*team) = 128; sizes never increase.
  EXPECT_EQ(sizes.front(), 1024 / (2 * team));
  EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
  EXPECT_EQ(sizes.back(), 1);
}

TEST(ScheduleGuided, RespectsChunkMinimum) {
  LoopScheduler sched(ScheduleKind::Guided, 8, 0, 1000, 4);
  std::int64_t total = 0;
  while (const auto s = sched.next(0)) {
    // Every piece is at least the chunk minimum except possibly the last.
    if (total + s->size() < 1000) {
      EXPECT_GE(s->size(), 8);
    }
    total += s->size();
  }
  EXPECT_EQ(total, 1000);
}

TEST(ScheduleAuto, BehavesLikeStaticBlocks) {
  LoopScheduler sched(ScheduleKind::Auto, 0, 0, 40, 4);
  const auto s = sched.next(1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (LoopSlice{10, 20}));
  EXPECT_FALSE(sched.next(1).has_value());
}

TEST(Schedule, EmptyLoopYieldsNothing) {
  for (const ScheduleKind kind : {ScheduleKind::Static, ScheduleKind::Dynamic,
                                  ScheduleKind::Guided, ScheduleKind::Auto}) {
    LoopScheduler sched(kind, 0, 10, 10, 3);
    for (int tid = 0; tid < 3; ++tid) {
      EXPECT_FALSE(sched.next(tid).has_value()) << to_string(kind);
    }
  }
}

TEST(Schedule, InvertedBoundsTreatedAsEmpty) {
  LoopScheduler sched(ScheduleKind::Dynamic, 1, 10, 0, 2);
  EXPECT_FALSE(sched.next(0).has_value());
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW(LoopScheduler(ScheduleKind::Static, 0, 0, 10, 0),
               std::invalid_argument);
  LoopScheduler sched(ScheduleKind::Static, 0, 0, 10, 2);
  EXPECT_THROW(sched.next(-1), std::out_of_range);
  EXPECT_THROW(sched.next(2), std::out_of_range);
}

TEST(Schedule, ConcurrentDynamicDrainCoversAllIterations) {
  // Hammer the shared cursor from real threads.
  constexpr int kTeam = 4;
  constexpr std::int64_t kIters = 20000;
  LoopScheduler sched(ScheduleKind::Dynamic, 3, 0, kIters, kTeam);
  std::vector<std::int64_t> counts(kTeam, 0);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kTeam; ++t) {
      threads.emplace_back([&sched, &counts, t] {
        while (const auto s = sched.next(t)) counts[static_cast<std::size_t>(t)] += s->size();
      });
    }
  }
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, kIters);
}

TEST(Schedule, ConcurrentGuidedDrainCoversAllIterations) {
  constexpr int kTeam = 4;
  constexpr std::int64_t kIters = 50000;
  LoopScheduler sched(ScheduleKind::Guided, 1, 0, kIters, kTeam);
  std::atomic<std::int64_t> total{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kTeam; ++t) {
      threads.emplace_back([&sched, &total, t] {
        while (const auto s = sched.next(t)) total.fetch_add(s->size());
      });
    }
  }
  EXPECT_EQ(total.load(), kIters);
}

}  // namespace
}  // namespace omptune::rt
