// The headline integration test: run the FULL paper-scale study (Table II:
// 243,759 samples) in model mode and assert every qualitative claim of the
// paper's evaluation section. This is the executable form of EXPERIMENTS.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/study.hpp"
#include "core/tuner.hpp"
#include "sim/executor.hpp"
#include "stats/wilcoxon.hpp"

namespace omptune {
namespace {

const core::StudyResult& full_study() {
  static const core::StudyResult result = [] {
    sim::ModelRunner runner;
    core::Study study(runner);
    return study.run_paper_study();
  }();
  return result;
}

double app_arch_best(const std::string& app, const std::string& arch) {
  for (const auto& r : full_study().ranges_by_arch) {
    if (r.app == app && r.arch == arch) return r.hi;
  }
  ADD_FAILURE() << "no range for " << app << "/" << arch;
  return 0.0;
}

TEST(TableII, DatasetSizesMatchExactly) {
  std::map<std::string, std::size_t> per_arch;
  std::map<std::string, std::set<std::string>> apps_per_arch;
  for (const auto& s : full_study().dataset.samples()) {
    ++per_arch[s.arch];
    apps_per_arch[s.arch].insert(s.app);
  }
  EXPECT_EQ(per_arch["a64fx"], 53822u);
  EXPECT_EQ(per_arch["milan"], 99707u);
  EXPECT_EQ(per_arch["skylake"], 90230u);
  EXPECT_EQ(apps_per_arch["a64fx"].size(), 15u);
  EXPECT_EQ(apps_per_arch["milan"].size(), 13u);
  EXPECT_EQ(apps_per_arch["skylake"].size(), 12u);
  EXPECT_EQ(full_study().dataset.size(), 243759u);
}

TEST(SectionV1, SpeedupPotentialAndMedians) {
  const auto& upshot = full_study().upshot;
  auto find = [&upshot](const std::string& arch) {
    return *std::find_if(upshot.begin(), upshot.end(),
                         [&arch](const auto& u) { return u.arch == arch; });
  };
  // Paper: A64FX max 4.85 / median 1.02; Milan max 2.6 / median 1.15;
  // Skylake max 3.47 / median 1.065. Allow the model +-20% on the extremes.
  EXPECT_NEAR(find("a64fx").max_best, 4.85, 4.85 * 0.2);
  EXPECT_NEAR(find("milan").max_best, 2.60, 2.60 * 0.2);
  EXPECT_NEAR(find("skylake").max_best, 3.47, 3.47 * 0.2);
  EXPECT_NEAR(find("a64fx").median_best, 1.02, 0.05);
  EXPECT_NEAR(find("skylake").median_best, 1.065, 0.05);
  EXPECT_NEAR(find("milan").median_best, 1.15, 0.25);
  // Ordering of the medians.
  EXPECT_LT(find("a64fx").median_best, find("skylake").median_best);
  EXPECT_LT(find("skylake").median_best, find("milan").median_best);
}

TEST(TableV, AlignmentConsistentXsbenchMilanOnly) {
  // XSBench: minimal on A64FX and Skylake, > 2x on Milan.
  EXPECT_LT(app_arch_best("xsbench", "a64fx"), 1.1);
  EXPECT_LT(app_arch_best("xsbench", "skylake"), 1.1);
  EXPECT_GT(app_arch_best("xsbench", "milan"), 2.0);
  // Alignment: consistent moderate potential everywhere (1.02 - 1.19).
  for (const std::string arch : {"a64fx", "milan", "skylake"}) {
    EXPECT_GT(app_arch_best("alignment", arch), 1.02) << arch;
    EXPECT_LT(app_arch_best("alignment", arch), 1.30) << arch;
  }
}

TEST(TableVI, PerApplicationRangesTrackThePaper) {
  struct Target {
    const char* app;
    double lo, hi;       // paper's range
    double tolerance;    // relative tolerance on the max
  };
  // Wider tolerance where the model is known to sit low/high (documented in
  // EXPERIMENTS.md); the *ordering* claims below are strict.
  const Target targets[] = {
      {"alignment", 1.022, 1.186, 0.10}, {"bt", 1.027, 1.185, 0.10},
      {"cg", 1.000, 1.857, 0.15},        {"ep", 1.000, 1.090, 0.05},
      {"ft", 1.010, 1.545, 0.15},        {"health", 1.282, 2.218, 0.15},
      {"lu", 1.020, 1.121, 0.10},        {"lulesh", 1.004, 1.062, 0.10},
      {"mg", 1.011, 2.167, 0.20},        {"nqueens", 2.342, 4.851, 0.15},
      {"rsbench", 1.004, 1.213, 0.10},   {"sort", 1.174, 1.180, 0.05},
      {"strassen", 1.023, 1.025, 0.05},  {"su3bench", 1.002, 2.279, 0.15},
      {"xsbench", 1.001, 2.602, 0.15},
  };
  const auto& ranges = full_study().ranges_by_app;
  for (const Target& t : targets) {
    const auto it = std::find_if(ranges.begin(), ranges.end(),
                                 [&t](const auto& r) { return r.app == t.app; });
    ASSERT_NE(it, ranges.end()) << t.app;
    EXPECT_NEAR(it->hi, t.hi, t.hi * t.tolerance) << t.app;
    EXPECT_GE(it->lo, 0.95) << t.app;
  }
  // Strict ordering claims: NQueens >> Health/MG/SU3/XS > mid pack > EP,
  // Strassen, LULESH.
  auto hi = [&ranges](const std::string& app) {
    return std::find_if(ranges.begin(), ranges.end(),
                        [&app](const auto& r) { return r.app == app; })->hi;
  };
  EXPECT_GT(hi("nqueens"), hi("health"));
  EXPECT_GT(hi("health"), hi("lu"));
  EXPECT_GT(hi("xsbench"), hi("rsbench"));
  EXPECT_GT(hi("su3bench"), hi("lulesh"));
  EXPECT_GT(hi("mg"), hi("ep"));
}

TEST(TableIII, WilcoxonConsistencyPerArchitecture) {
  // Rebuild the paper's repetition-pair test on the alignment/small batch:
  // consistent pairs on A64FX (high p), systematic drift on the X86
  // machines (low p).
  const auto& dataset = full_study().dataset;
  auto runtimes_of = [&dataset](const std::string& arch, int rep) {
    std::vector<double> out;
    for (const auto& s : dataset.samples()) {
      if (s.arch == arch && s.app == "alignment" && s.input == "small") {
        out.push_back(s.runtimes.at(static_cast<std::size_t>(rep)));
      }
    }
    return out;
  };
  for (const std::string arch : {"a64fx", "milan", "skylake"}) {
    const auto r0 = runtimes_of(arch, 0);
    const auto r1 = runtimes_of(arch, 1);
    const auto r2 = runtimes_of(arch, 2);
    ASSERT_GT(r0.size(), 100u) << arch;
    const auto p01 = stats::wilcoxon_signed_rank(r0, r1).p_value;
    const auto p12 = stats::wilcoxon_signed_rank(r1, r2).p_value;
    if (arch == "a64fx") {
      EXPECT_GT(p01, 0.05) << arch;  // consistent repetitions
      EXPECT_GT(p12, 0.05) << arch;
    } else {
      // Shared clusters: at least one pair shows a significant shift.
      EXPECT_LT(std::min(p01, p12), 0.01) << arch;
    }
  }
}

TEST(TableIV, RepetitionMeansAreSimilarWithinArch) {
  const auto& dataset = full_study().dataset;
  for (const std::string arch : {"a64fx", "milan", "skylake"}) {
    std::vector<double> mean_per_rep(4, 0.0);
    std::size_t count = 0;
    for (const auto& s : dataset.samples()) {
      if (s.arch != arch || s.app != "alignment" || s.input != "small") continue;
      for (int r = 0; r < 4; ++r) {
        mean_per_rep[static_cast<std::size_t>(r)] += s.runtimes.at(static_cast<std::size_t>(r));
      }
      ++count;
    }
    ASSERT_GT(count, 0u);
    for (auto& m : mean_per_rep) m /= static_cast<double>(count);
    // Means agree within 10% (Table IV: similar means/stddevs per arch).
    for (int r = 1; r < 4; ++r) {
      EXPECT_NEAR(mean_per_rep[static_cast<std::size_t>(r)], mean_per_rep[0],
                  0.1 * mean_per_rep[0])
          << arch;
    }
  }
}

TEST(FigTwo, BotsTaskAppsShowLowArchitectureReliance) {
  // Paper: "applications from BSC OMP Task Suite show very low reliance on
  // the architecture".
  const auto& map = full_study().per_app_influence;
  double bots_total = 0.0;
  int bots_count = 0;
  double npb_total = 0.0;
  int npb_count = 0;
  for (const std::string app : {"alignment", "health", "nqueens"}) {
    bots_total += map.at(app, "Architecture");
    ++bots_count;
  }
  for (const std::string app : {"bt", "cg", "ep", "ft", "lu"}) {
    npb_total += map.at(app, "Architecture");
    ++npb_count;
  }
  EXPECT_LT(bots_total / bots_count, npb_total / npb_count);
}

TEST(FigThree, VariableInfluenceOrderingPerArchitecture) {
  const auto& map = full_study().per_arch_influence;
  ASSERT_EQ(map.rows.size(), 3u);
  for (const auto& row : map.rows) {
    // The standardized ICV knobs and the wait-policy pair carry the signal;
    // KMP_FORCE_REDUCTION and KMP_ALIGN_ALLOC are the least relevant
    // (paper: "very low relevance ... when grouped by architecture").
    const double bind = map.at(row.group, "OMP_PROC_BIND");
    const double library = map.at(row.group, "KMP_LIBRARY");
    const double blocktime = map.at(row.group, "KMP_BLOCKTIME");
    const double reduction = map.at(row.group, "KMP_FORCE_REDUCTION");
    const double align = map.at(row.group, "KMP_ALIGN_ALLOC");
    EXPECT_GT(bind, reduction) << row.group;
    EXPECT_GT(bind, align) << row.group;
    EXPECT_GT(library, reduction) << row.group;
    EXPECT_GT(blocktime, reduction) << row.group;
    EXPECT_LT(reduction, 0.05) << row.group;
    EXPECT_LT(align, 0.08) << row.group;
  }
}

TEST(TableVII, NqueensTurnaroundEverywhereCgReductionOnSkylake) {
  const auto recs =
      analysis::recommend_for_app(full_study().dataset, "nqueens");
  const bool turnaround_everywhere = std::any_of(
      recs.begin(), recs.end(), [](const analysis::Recommendation& r) {
        return r.arch == "all" && r.variable == "KMP_LIBRARY" &&
               r.value == "turnaround";
      });
  EXPECT_TRUE(turnaround_everywhere);

  // CG on Skylake: forced tree/atomic reductions appear among the near-best
  // configurations more often than critical.
  const auto& dataset = full_study().dataset;
  std::map<std::string, int> reduction_in_best;
  double best = 0.0;
  for (const auto& s : dataset.samples()) {
    if (s.arch == "skylake" && s.app == "cg") best = std::max(best, s.speedup);
  }
  for (const auto& s : dataset.samples()) {
    if (s.arch != "skylake" || s.app != "cg") continue;
    if (s.speedup >= 0.97 * best) {
      ++reduction_in_best[rt::to_string(s.config.reduction)];
    }
  }
  EXPECT_GE(reduction_in_best["tree"] + reduction_in_best["atomic"] +
                reduction_in_best["unset"],
            reduction_in_best["critical"]);
}

TEST(SectionV4, WorstTrendIsMasterBindingAtScale) {
  const auto& trends = full_study().worst_trends;
  ASSERT_FALSE(trends.empty());
  EXPECT_NE(trends.front().condition.find("master"), std::string::npos);
  EXPECT_GT(trends.front().lift, 4.0);
  EXPECT_GT(trends.front().share_in_worst, 0.5);
}

TEST(Defaults, DefaultConfigurationPerformsWellOverall) {
  // Paper V.1: "the default performs very well across the board" — the
  // median sample is close to (or below) default performance.
  std::vector<double> speedups;
  for (const auto& s : full_study().dataset.samples()) {
    speedups.push_back(s.speedup);
  }
  std::nth_element(speedups.begin(), speedups.begin() + speedups.size() / 2,
                   speedups.end());
  EXPECT_LT(speedups[speedups.size() / 2], 1.05);
}

}  // namespace
}  // namespace omptune
