// The binary columnar store must be invisible in the data: a dataset round
// trips through the .omps format bit-faithfully (including ragged runtime
// rows and quarantined samples the CSV schema pads), indexed queries return
// exactly what a full-dataset filter would while leaving non-matching
// runtime blocks untouched, and every corruption mode surfaces as a typed
// DataCorruptionError naming the file and byte offset — never a crash,
// never partial data.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "analysis/recommend.hpp"
#include "core/tuner.hpp"
#include "sim/executor.hpp"
#include "store/compact.hpp"
#include "store/format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "sweep/harness.hpp"
#include "sweep/journal.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"

namespace omptune {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_store_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  return dir;
}

/// A small multi-arch, multi-app study dataset, plus hand-made edge cases:
/// a quarantined sample, a retried one, and a ragged runtime row.
sweep::Dataset sample_dataset() {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3, 5);
  sweep::Dataset dataset =
      harness.run_study(sweep::StudyPlan::mini_plan(2, 6));

  sweep::Sample quarantined = dataset.samples().front();
  quarantined.input = "synthetic-q";
  quarantined.status = sweep::SampleStatus::Quarantined;
  quarantined.error = "node failure, \"quoted\" and, comma";
  quarantined.attempts = 3;
  quarantined.runtimes.clear();  // ragged: no valid repetitions
  quarantined.mean_runtime = 0.0;
  quarantined.speedup = 0.0;
  dataset.add(quarantined);

  sweep::Sample retried = dataset.samples().front();
  retried.input = "synthetic-r";
  retried.status = sweep::SampleStatus::Retried;
  retried.attempts = 2;
  retried.runtimes.pop_back();  // ragged: one repetition lost
  dataset.add(retried);
  return dataset;
}

void expect_samples_equal(const sweep::Sample& a, const sweep::Sample& b) {
  EXPECT_EQ(a.arch, b.arch);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.suite, b.suite);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.input, b.input);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.runtimes, b.runtimes);  // bit-exact, ragged rows included
  EXPECT_EQ(a.mean_runtime, b.mean_runtime);
  EXPECT_EQ(a.default_runtime, b.default_runtime);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.is_default, b.is_default);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.error, b.error);
}

TEST(Store, RoundTripIsBitFaithful) {
  const sweep::Dataset original = sample_dataset();
  const std::string dir = temp_dir("roundtrip");
  const std::string path = util::path_join(dir, "d.omps");

  original.save_store(path);
  const sweep::Dataset loaded = sweep::Dataset::load_store(path);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    expect_samples_equal(loaded.samples()[i], original.samples()[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Store, CsvStoreCsvProducesIdenticalText) {
  // Property: starting from CSV-representable data, a pass through the
  // binary store changes nothing the CSV schema can express.
  const sweep::Dataset source = sample_dataset();
  std::ostringstream first;
  source.to_csv().write(first);

  std::istringstream is(first.str());
  const sweep::Dataset from_csv =
      sweep::Dataset::from_csv(util::CsvTable::read(is));

  const std::string dir = temp_dir("csv_prop");
  const std::string path = util::path_join(dir, "d.omps");
  from_csv.save_store(path);
  std::ostringstream second;
  sweep::Dataset::load_store(path).to_csv().write(second);

  std::istringstream expected(first.str());
  std::ostringstream canonical;
  sweep::Dataset::from_csv(util::CsvTable::read(expected)).to_csv().write(canonical);
  EXPECT_EQ(second.str(), canonical.str());
  std::filesystem::remove_all(dir);
}

TEST(Store, EmptyDatasetRoundTrips) {
  const std::string dir = temp_dir("empty");
  const std::string path = util::path_join(dir, "empty.omps");
  sweep::Dataset().save_store(path);

  const store::StoreReader reader(path);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_TRUE(reader.settings().empty());
  EXPECT_EQ(reader.load().size(), 0u);
  EXPECT_EQ(reader.query({}).size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Store, QueryEqualsFilterAndSkipsForeignRuntimeBlocks) {
  const sweep::Dataset dataset = sample_dataset();
  const std::string dir = temp_dir("query");
  const std::string path = util::path_join(dir, "d.omps");
  dataset.save_store(path);

  const std::string arch = dataset.samples().front().arch;
  const std::string app = dataset.samples().front().app;

  const store::StoreReader reader(path);
  store::StoreQuery query;
  query.arch = arch;
  query.app = app;
  const sweep::Dataset slice = reader.query(query);

  const sweep::Dataset expected = dataset.filter([&](const sweep::Sample& s) {
    return s.arch == arch && s.app == app;
  });
  ASSERT_EQ(slice.size(), expected.size());
  ASSERT_GT(slice.size(), 0u);
  ASSERT_LT(slice.size(), dataset.size()) << "query must be selective";
  for (std::size_t i = 0; i < slice.size(); ++i) {
    expect_samples_equal(slice.samples()[i], expected.samples()[i]);
  }

  // The indexed query must have read exactly the matching rows' runtime
  // values and nothing else from the runtime block.
  std::uint64_t matched_runtime_bytes = 0;
  for (const sweep::Sample& s : expected.samples()) {
    matched_runtime_bytes += 8u * s.runtimes.size();
  }
  std::uint64_t all_runtime_bytes = 0;
  for (const sweep::Sample& s : dataset.samples()) {
    all_runtime_bytes += 8u * s.runtimes.size();
  }
  EXPECT_EQ(reader.runtime_bytes_touched(), matched_runtime_bytes);
  EXPECT_LT(reader.runtime_bytes_touched(), all_runtime_bytes);

  // An unconstrained query materializes everything, like load().
  const store::StoreReader full(path);
  EXPECT_EQ(full.query({}).size(), dataset.size());
  std::filesystem::remove_all(dir);
}

TEST(Store, ConcurrentQueriesOnOneReaderAgreeWithSerial) {
  // The serve subsystem's access pattern: one mmap'd StoreReader shared by
  // a worker pool, every worker issuing indexed queries and zero-copy scans
  // concurrently. The reader's const members are documented thread-safe;
  // this pins it down (and gives TSan a real interleaving to chew on —
  // the scan validation latch and the runtime-bytes counter are the only
  // mutable state).
  const sweep::Dataset dataset = sample_dataset();
  const std::string dir = temp_dir("concurrent");
  const std::string path = util::path_join(dir, "d.omps");
  dataset.save_store(path);

  const store::StoreReader reader(path);
  // Serial baselines, computed before any concurrency.
  std::vector<store::StoreQuery> queries;
  std::vector<std::size_t> expected_sizes;
  for (const store::SettingEntry& entry : reader.settings()) {
    store::StoreQuery query;
    query.arch = entry.arch;
    query.app = entry.app;
    queries.push_back(query);
    expected_sizes.push_back(dataset
                                 .filter([&](const sweep::Sample& s) {
                                   return s.arch == entry.arch &&
                                          s.app == entry.app;
                                 })
                                 .size());
  }
  ASSERT_FALSE(queries.empty());

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 8;
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const std::size_t q = (static_cast<std::size_t>(t) + round) % queries.size();
        const sweep::Dataset slice = reader.query(queries[q]);
        if (slice.size() != expected_sizes[q]) ++mismatches;
        // Interleave the zero-copy path: scan validation races with
        // queries on the same mapping.
        std::size_t rows = 0;
        reader.scan([&rows](const store::SettingSlice& s) { rows += s.rows; });
        if (rows != dataset.size()) ++mismatches;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  std::filesystem::remove_all(dir);
}

TEST(Store, SettingsIndexMatchesTheData) {
  const sweep::Dataset dataset = sample_dataset();
  const std::string dir = temp_dir("settings");
  const std::string path = util::path_join(dir, "d.omps");
  dataset.save_store(path);

  const store::StoreReader reader(path);
  std::size_t covered = 0;
  for (const store::SettingEntry& entry : reader.settings()) {
    ASSERT_GT(entry.rows, 0u);
    for (std::size_t r = entry.first_row; r < entry.first_row + entry.rows; ++r) {
      const sweep::Sample& s = dataset.samples()[r];
      EXPECT_EQ(s.arch, entry.arch);
      EXPECT_EQ(s.app, entry.app);
      EXPECT_EQ(s.input, entry.input);
      EXPECT_EQ(s.threads, entry.threads);
    }
    covered += entry.rows;
  }
  EXPECT_EQ(covered, dataset.size());
  std::filesystem::remove_all(dir);
}

TEST(Store, KnowledgeBaseFromStoreMatchesInMemoryAnswers) {
  const sweep::Dataset dataset = sample_dataset();
  const std::string dir = temp_dir("kb");
  const std::string path = util::path_join(dir, "d.omps");
  dataset.save_store(path);

  const std::string arch = dataset.samples().front().arch;
  const std::string app = dataset.samples().front().app;

  // Reference: knowledge base over the architecture's slice, in memory.
  const sweep::Dataset arch_data =
      dataset.filter([&](const sweep::Sample& s) { return s.arch == arch; });
  const core::KnowledgeBase reference(arch_data);

  const store::StoreReader reader(path);
  const core::KnowledgeBase from_store(reader, arch);

  EXPECT_EQ(from_store.variable_priority(app, arch),
            reference.variable_priority(app, arch));
  EXPECT_EQ(from_store.best_known_config(app, arch),
            reference.best_known_config(app, arch));
  EXPECT_DOUBLE_EQ(from_store.best_known_speedup(app, arch),
                   reference.best_known_speedup(app, arch));

  // Store-backed recommendations match the in-memory extraction.
  const auto recs_memory = analysis::recommend_for_app(dataset, app);
  const auto recs_store = analysis::recommend_for_app(reader, app);
  ASSERT_EQ(recs_store.size(), recs_memory.size());
  for (std::size_t i = 0; i < recs_store.size(); ++i) {
    EXPECT_EQ(recs_store[i].variable, recs_memory[i].variable);
    EXPECT_EQ(recs_store[i].value, recs_memory[i].value);
    EXPECT_DOUBLE_EQ(recs_store[i].lift, recs_memory[i].lift);
  }
  std::filesystem::remove_all(dir);
}

// ---- dedupe semantics -------------------------------------------------------

TEST(Dedupe, BestStatusWinsRegardlessOfOrder) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 7);
  const sweep::Dataset clean =
      harness.run_study(sweep::StudyPlan::mini_plan(1, 4));

  sweep::Dataset poisoned;
  for (sweep::Sample s : clean.samples()) {
    s.status = sweep::SampleStatus::Quarantined;
    s.error = "bad node";
    poisoned.add(std::move(s));
  }

  // Quarantined first, clean second: the clean re-collection must replace
  // the placeholder in place (not survive by arrival order).
  sweep::Dataset combined = poisoned;
  combined.append(clean);
  sweep::Dataset::DedupeReport report;
  const sweep::Dataset deduped = combined.deduped(&report);
  EXPECT_EQ(deduped.size(), clean.size());
  EXPECT_EQ(deduped.quarantined_count(), 0u);
  EXPECT_EQ(report.duplicates, clean.size());
  EXPECT_EQ(report.replaced, clean.size());

  // Clean first, quarantined second: nothing to replace.
  sweep::Dataset reversed = clean;
  reversed.append(poisoned);
  const sweep::Dataset deduped2 = reversed.deduped(&report);
  EXPECT_EQ(deduped2.size(), clean.size());
  EXPECT_EQ(deduped2.quarantined_count(), 0u);
  EXPECT_EQ(report.replaced, 0u);
}

TEST(Dedupe, CompactFoldsJournalAndDropsResurrectedPlaceholders) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 7);
  const sweep::Dataset clean =
      harness.run_study(sweep::StudyPlan::mini_plan(1, 5));

  const std::string dir = temp_dir("compact");
  const sweep::StudyJournal journal(util::path_join(dir, "journal"));

  // Entry "aaa" sorts first: the quarantined placeholders arrive before the
  // re-collected clean samples in file-name order.
  sweep::Dataset poisoned;
  for (sweep::Sample s : clean.samples()) {
    s.status = sweep::SampleStatus::Quarantined;
    s.error = "bad node";
    poisoned.add(std::move(s));
  }
  journal.record("aaa bad-node pass", poisoned);
  journal.record("zzz re-collection", clean);

  const std::string path = util::path_join(dir, "study.omps");
  const store::CompactReport report = journal.compact(path);
  EXPECT_EQ(report.entries, 2u);
  EXPECT_EQ(report.samples_in, 2 * clean.size());
  EXPECT_EQ(report.samples_out, clean.size());
  EXPECT_EQ(report.duplicates_dropped, clean.size());
  EXPECT_EQ(report.replaced, clean.size());
  EXPECT_EQ(report.quarantined, 0u);

  const sweep::Dataset stored = sweep::Dataset::load_store(path);
  EXPECT_EQ(stored.size(), clean.size());
  EXPECT_EQ(stored.quarantined_count(), 0u);
  std::filesystem::remove_all(dir);
}

// ---- corruption -------------------------------------------------------------

/// Writes `bytes` to a store path and returns it.
std::string write_raw(const std::string& dir, const std::string& bytes) {
  const std::string path = util::path_join(dir, "corrupt.omps");
  util::atomic_write_file(path, bytes);
  return path;
}

/// Opening (or fully loading) `bytes` must throw DataCorruptionError whose
/// message names the file and a byte offset.
void expect_corrupt_open(const std::string& dir, const std::string& bytes,
                         const std::string& expected_fragment) {
  const std::string path = write_raw(dir, bytes);
  try {
    store::StoreReader reader(path);
    reader.load();
    FAIL() << "expected DataCorruptionError (" << expected_fragment << ")";
  } catch (const util::DataCorruptionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("corrupt.omps"), std::string::npos) << what;
    EXPECT_NE(what.find("@ offset"), std::string::npos) << what;
    EXPECT_NE(what.find(expected_fragment), std::string::npos) << what;
  }
}

TEST(StoreCorruption, EveryHeaderFailureModeIsTypedWithFileAndOffset) {
  const std::string pristine = store::serialize_store(sample_dataset());
  const std::string dir = temp_dir("corrupt");

  {  // Bad magic.
    std::string bytes = pristine;
    bytes[0] = 'X';
    expect_corrupt_open(dir, bytes, "bad magic");
  }
  {  // Unsupported version.
    std::string bytes = pristine;
    bytes[8] = 9;
    expect_corrupt_open(dir, bytes, "unsupported store version");
  }
  {  // Truncated header.
    expect_corrupt_open(dir, pristine.substr(0, 20), "smaller than");
  }
  {  // Truncated file (clean cut past the header).
    expect_corrupt_open(dir, pristine.substr(0, pristine.size() / 2),
                        "truncated");
  }
  {  // Flipped checksum in the section table: the header checksum covers it.
    std::string bytes = pristine;
    bytes[store::kHeaderBytes + 24] ^= 0x40;  // first section's checksum field
    expect_corrupt_open(dir, bytes, "header checksum mismatch");
  }
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruption, FlippedRuntimeByteFailsFullLoadButNotForeignQueries) {
  const sweep::Dataset dataset = sample_dataset();
  std::string bytes = store::serialize_store(dataset);
  const std::string dir = temp_dir("flip");

  // Locate the runtimes section via its table entry and flip one byte.
  const std::size_t entry =
      store::kHeaderBytes +
      (static_cast<std::size_t>(store::SectionKind::Runtimes) - 1) *
          store::kSectionEntryBytes;
  const auto section_offset = store::load_scalar<std::uint64_t>(
      reinterpret_cast<const unsigned char*>(bytes.data()) + entry + 8);
  bytes[static_cast<std::size_t>(section_offset)] ^= 0x01;
  const std::string path = write_raw(dir, bytes);

  // Open succeeds: the metadata is intact.
  const store::StoreReader reader(path);
  EXPECT_EQ(reader.size(), dataset.size());

  // A full load verifies every section and must reject the flip.
  try {
    reader.load();
    FAIL() << "expected DataCorruptionError";
  } catch (const util::DataCorruptionError& error) {
    EXPECT_NE(std::string(error.what()).find("runtimes section checksum"),
              std::string::npos)
        << error.what();
  }

  // A query that never touches the damaged row's runtime block is
  // unaffected — exactly the locality the index buys.
  store::StoreQuery query;
  query.arch = dataset.samples().back().arch;
  query.app = dataset.samples().back().app;
  query.input = dataset.samples().back().input;
  EXPECT_GT(reader.query(query).size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruption, OutOfRangeDictionaryCodeIsCaughtAtMaterialization) {
  const sweep::Dataset dataset = sample_dataset();
  std::string bytes = store::serialize_store(dataset);
  const std::string dir = temp_dir("dict");

  // Patch row 0's suite code (config section, not checksummed by queries)
  // to a code no dictionary can resolve.
  const std::size_t entry =
      store::kHeaderBytes +
      (static_cast<std::size_t>(store::SectionKind::ConfigColumns) - 1) *
          store::kSectionEntryBytes;
  const auto section_offset = store::load_scalar<std::uint64_t>(
      reinterpret_cast<const unsigned char*>(bytes.data()) + entry + 8);
  const std::size_t suite_offset =
      static_cast<std::size_t>(section_offset) +
      store::config_columns_layout(dataset.size()).suite;
  bytes[suite_offset] = '\xFF';
  bytes[suite_offset + 1] = '\xFF';
  const std::string path = write_raw(dir, bytes);

  const store::StoreReader reader(path);
  store::StoreQuery query;
  query.arch = dataset.samples().front().arch;  // row 0 matches
  try {
    reader.query(query);
    FAIL() << "expected DataCorruptionError";
  } catch (const util::DataCorruptionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("suite code"), std::string::npos) << what;
    EXPECT_NE(what.find("@ offset " + std::to_string(suite_offset)),
              std::string::npos)
        << what;
  }
  std::filesystem::remove_all(dir);
}

/// Random truncations and byte garbles: open+load must either succeed with
/// every sample intact or throw DataCorruptionError; an indexed query must
/// never return a row count other than the full partition (no partial
/// data), though it may not detect damage in blocks it never reads.
class StoreCorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StoreCorruptionFuzz, TruncatedOrGarbledStoresNeverLoseDataSilently) {
  const sweep::Dataset dataset = sample_dataset();
  const std::string pristine = store::serialize_store(dataset);
  const std::string dir =
      temp_dir("fuzz_" + std::to_string(GetParam()));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 9973u + 7);

  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    std::string mutated = pristine;
    if (rng.uniform() < 0.4) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    } else {
      const std::size_t at = rng.uniform_index(mutated.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.uniform_index(16), mutated.size() - at);
      for (std::size_t b = 0; b < len; ++b) {
        mutated[at + b] = static_cast<char>(rng.uniform_index(256));
      }
    }
    const std::string path = write_raw(dir, mutated);
    try {
      const store::StoreReader reader(path);
      const sweep::Dataset loaded = reader.load();
      // Success is only acceptable with the dataset fully intact.
      ASSERT_EQ(loaded.size(), dataset.size());
      for (const auto& s : loaded.samples()) {
        ASSERT_TRUE(std::isfinite(s.mean_runtime));
        ASSERT_TRUE(std::isfinite(s.speedup));
      }
    } catch (const util::DataCorruptionError& error) {
      ++rejected;
      EXPECT_NE(std::string(error.what()).find("corrupt.omps"),
                std::string::npos);
    }
    try {
      const store::StoreReader reader(path);
      const sweep::Dataset queried = reader.query({});
      ASSERT_EQ(queried.size(), dataset.size()) << "partial query result";
    } catch (const util::DataCorruptionError&) {
      // The only acceptable failure mode.
    }
  }
  EXPECT_GT(rejected, 0);  // mutations do get caught, not absorbed
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreCorruptionFuzz, ::testing::Range(0, 4));

/// At-rest bit rot: because the header checksum covers the header AND the
/// section table, and every section (padding included) carries its own
/// checksum over its exact padded extent with no inter-section gaps, a
/// single-byte flip ANYWHERE in a .omps file — metadata, bulk columns, the
/// embedded partition index — must surface from a full load as a typed
/// DataCorruptionError naming the file. Never a crash, never silently
/// wrong rows.
class StoreBitRotFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StoreBitRotFuzz, AnySingleByteFlipIsTypedCorruptionNeverSilent) {
  const sweep::Dataset dataset = sample_dataset();
  const std::string pristine = store::serialize_store(dataset);
  const std::string dir = temp_dir("bitrot_" + std::to_string(GetParam()));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3);

  std::vector<std::size_t> positions;
  if (GetParam() == 0) {
    // Dense pass over the metadata: magic, header fields, section table.
    const std::size_t metadata = std::min(
        pristine.size(),
        store::kHeaderBytes + store::kSectionCount * store::kSectionEntryBytes);
    for (std::size_t at = 0; at < metadata; ++at) positions.push_back(at);
  }
  // First, middle and last byte of every section — the embedded index and
  // the per-section padding bytes included.
  for (std::uint32_t i = 0; i < store::kSectionCount; ++i) {
    const std::size_t entry =
        store::kHeaderBytes + i * store::kSectionEntryBytes;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::memcpy(&offset, pristine.data() + entry + 8, sizeof offset);
    std::memcpy(&bytes, pristine.data() + entry + 16, sizeof bytes);
    if (bytes == 0 || offset + bytes > pristine.size()) continue;
    positions.push_back(offset);
    positions.push_back(offset + bytes / 2);
    positions.push_back(offset + bytes - 1);
  }
  for (int i = 0; i < 200; ++i) {
    positions.push_back(rng.uniform_index(pristine.size()));
  }

  for (const std::size_t at : positions) {
    std::string mutated = pristine;
    // XOR with a nonzero mask: the byte is guaranteed to change.
    mutated[at] = static_cast<char>(
        static_cast<unsigned char>(mutated[at]) ^
        static_cast<unsigned char>(1 + rng.uniform_index(255)));
    const std::string path = write_raw(dir, mutated);
    try {
      const store::StoreReader reader(path);
      reader.load();
      FAIL() << "single-byte flip at offset " << at << " of "
             << pristine.size() << " loaded without a corruption error";
    } catch (const util::DataCorruptionError& error) {
      EXPECT_NE(std::string(error.what()).find("corrupt.omps"),
                std::string::npos)
          << error.what();
    }
    // Any other exception type escapes and fails the test: a flip must
    // never surface as a crash, a bad_alloc, or an untyped error.
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreBitRotFuzz, ::testing::Range(0, 3));

// ---- CSV loader hardening (the silent short-read path) ----------------------

TEST(CsvHardening, GarbledRuntimeColumnNameRejectsTheFile) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3, 5);
  const auto table =
      harness.run_study(sweep::StudyPlan::mini_plan(1, 3)).to_csv();

  // A garbled trailing column name used to silently shrink the repetition
  // block (every row lost runtime_1 with no error). Both spellings of the
  // damage must now reject the whole table.
  for (const std::string garbled : {"runtime_x", "runtimX_1"}) {
    std::vector<std::string> header = table.header();
    header[table.col_index("runtime_1")] = garbled;
    util::CsvTable bad(header);
    for (std::size_t r = 0; r < table.num_rows(); ++r) bad.add_row(table.row(r));
    try {
      sweep::Dataset::from_csv(bad, "garbled.csv");
      FAIL() << "expected rejection of header column '" << garbled << "'";
    } catch (const util::DataCorruptionError& error) {
      EXPECT_NE(std::string(error.what()).find("garbled.csv"),
                std::string::npos)
          << error.what();
    }
  }

  // Swapped runtime columns are equally a schema violation.
  {
    std::vector<std::string> header = table.header();
    std::swap(header[table.col_index("runtime_0")],
              header[table.col_index("runtime_1")]);
    util::CsvTable bad(header);
    for (std::size_t r = 0; r < table.num_rows(); ++r) bad.add_row(table.row(r));
    EXPECT_THROW(sweep::Dataset::from_csv(bad, "swapped.csv"),
                 util::DataCorruptionError);
  }

  // The pristine table still parses, with every repetition present.
  const sweep::Dataset parsed = sweep::Dataset::from_csv(table, "ok.csv");
  ASSERT_GT(parsed.size(), 0u);
  EXPECT_EQ(parsed.samples().front().runtimes.size(), 3u);
}

TEST(CompactCrashSafety, KillMidCompactNeverLeavesATornStore) {
  // The compactor writes through a temp file and an atomic rename, so a
  // SIGKILL at any point must leave the output path either absent or a
  // complete, checksum-valid store byte-identical to an undisturbed
  // compact — never a truncated or half-written file.
  const std::string dir = temp_dir("kill_compact");

  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 5);
  sweep::StudyRunOptions options;
  options.journal_dir = util::path_join(dir, "journal");
  harness.run_study(sweep::StudyPlan::mini_plan(2, 8), options);
  const sweep::StudyJournal journal(options.journal_dir);

  const std::string reference = util::path_join(dir, "reference.omps");
  journal.compact(reference);
  const std::string expected = util::read_file(reference).value();
  ASSERT_FALSE(expected.empty());

  const std::string out = util::path_join(dir, "out.omps");
  for (const unsigned delay_us : {0u, 50u, 200u, 500u, 1000u, 3000u, 8000u}) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        journal.compact(out);
      } catch (...) {
      }
      ::_exit(0);  // skip atexit / sanitizer leak checks in the fork child
    }
    ::usleep(delay_us);
    ::kill(pid, SIGKILL);
    util::wait_for(pid);

    if (util::file_exists(out)) {
      // The rename already happened: the store must be whole and identical.
      EXPECT_EQ(util::read_file(out).value(), expected)
          << "torn store after SIGKILL at " << delay_us << "us";
      EXPECT_NO_THROW(store::StoreReader(out).load());
      util::remove_file_durable(out);
    }
  }

  // A killed re-compact over an existing store must leave the old bytes
  // untouched — overwrite is all-or-nothing too.
  journal.compact(out);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    try {
      journal.compact(out);
    } catch (...) {
    }
    ::_exit(0);
  }
  ::usleep(300);
  ::kill(pid, SIGKILL);
  util::wait_for(pid);
  EXPECT_EQ(util::read_file(out).value(), expected);
  EXPECT_NO_THROW(store::StoreReader(out).load());

  // Temp droppings from the killed writers are swept by the next compact,
  // which itself still produces the identical store.
  journal.compact(out);
  EXPECT_EQ(util::read_file(out).value(), expected);
  std::filesystem::remove_all(dir);
}

TEST(Store, BufferedFallbackAnswersQueriesIdentically) {
  // OMPTUNE_NO_MMAP=1 forces the reader onto plain buffered I/O (the path
  // taken on mmap-refusing filesystems). Every query and full load must
  // return exactly what the kernel mapping returns.
  const sweep::Dataset original = sample_dataset();
  const std::string dir = temp_dir("no_mmap");
  const std::string path = util::path_join(dir, "d.omps");
  original.save_store(path);

  store::StoreReader mapped(path);
  EXPECT_TRUE(mapped.memory_mapped());

  ::setenv("OMPTUNE_NO_MMAP", "1", 1);
  store::StoreReader buffered(path);
  ::unsetenv("OMPTUNE_NO_MMAP");
  EXPECT_FALSE(buffered.memory_mapped());

  const sweep::Dataset via_map = mapped.load();
  const sweep::Dataset via_read = buffered.load();
  ASSERT_EQ(via_read.size(), via_map.size());
  for (std::size_t i = 0; i < via_read.size(); ++i) {
    expect_samples_equal(via_read.samples()[i], via_map.samples()[i]);
  }

  store::StoreQuery query;
  query.app = original.samples().front().app;
  const sweep::Dataset slice_map = mapped.query(query);
  const sweep::Dataset slice_read = buffered.query(query);
  ASSERT_GT(slice_read.size(), 0u);
  ASSERT_EQ(slice_read.size(), slice_map.size());
  for (std::size_t i = 0; i < slice_read.size(); ++i) {
    expect_samples_equal(slice_read.samples()[i], slice_map.samples()[i]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace omptune
