// The pool's determinism contract: chunk decomposition is a pure function
// of (n, grain), reductions merge in ascending chunk order, nested
// parallel_for runs inline, exceptions propagate and leave the pool usable,
// and OMPTUNE_ANALYSIS_THREADS drives the default size.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace omptune::util {
namespace {

TEST(ThreadPoolTest, ChunkCountIsPureFunctionOfSizeAndGrain) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 16), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(1, 16), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(16, 16), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(17, 16), 2u);
  EXPECT_EQ(ThreadPool::chunk_count(160, 16), 10u);
  EXPECT_EQ(ThreadPool::chunk_count(161, 16), 11u);
  // grain 0 is treated as 1 — n chunks, never a division by zero.
  EXPECT_EQ(ThreadPool::chunk_count(5, 0), 5u);
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkersAndRunsInline) {
  const ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(100, 16,
                    [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                      order.push_back(chunk);
                      EXPECT_EQ(begin, chunk * 16);
                      EXPECT_EQ(end, std::min<std::size_t>(begin + 16, 100));
                    });
  // Inline execution visits chunks in ascending order.
  std::vector<std::size_t> expected(7);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, EveryChunkRunsExactlyOnceOnAPool) {
  const ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 64,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1, std::memory_order_relaxed);
                      }
                    });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ReduceIsBitIdenticalAcrossPoolSizes) {
  // A floating-point sum whose value depends on association order: if the
  // merge order ever depended on scheduling, some pool size would differ.
  const std::size_t n = 50000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e10 + 1e-7;
  }
  const auto sum_with = [&](const ThreadPool* pool) {
    return parallel_reduce<double>(
        pool, n, 128,
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& into, double&& from) { into += from; });
  };
  const double serial = sum_with(nullptr);
  for (const unsigned lanes : {1u, 2u, 7u, 16u}) {
    const ThreadPool pool(lanes);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double parallel = sum_with(&pool);
      // Bit-identity, not tolerance: memcmp-equivalent via ==.
      ASSERT_EQ(parallel, serial) << lanes << " lanes, repeat " << repeat;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  const ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, 1, [&](std::size_t, std::size_t, std::size_t) {
    // Inner loop issued from a worker: must run inline on this worker, in
    // ascending chunk order, and must not wait for pool threads (deadlock).
    std::vector<std::size_t> inner_order;
    pool.parallel_for(10, 4,
                      [&](std::size_t, std::size_t, std::size_t chunk) {
                        inner_order.push_back(chunk);
                      });
    EXPECT_EQ(inner_order, (std::vector<std::size_t>{0, 1, 2}));
    total.fetch_add(inner_order.size());
  });
  EXPECT_EQ(total.load(), 24u);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  const ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000, 8,
                        [](std::size_t begin, std::size_t, std::size_t) {
                          if (begin >= 504) throw std::runtime_error("chunk 63");
                        }),
      std::runtime_error);

  // The pool must not be poisoned: the next loop runs all chunks normally.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(1000, 8,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      ran.fetch_add(end - begin, std::memory_order_relaxed);
                    });
  EXPECT_EQ(ran.load(), 1000u);
}

TEST(ThreadPoolTest, SerialFallbackAndPoolUseSameDecomposition) {
  // The free parallel_for with pool == nullptr must execute exactly the
  // chunks a pooled run executes — that is what lets outputs be compared
  // bit for bit.
  const auto chunks_of = [](const ThreadPool* pool) {
    std::set<std::pair<std::size_t, std::size_t>> spans;
    std::mutex m;
    parallel_for(pool, 1234, 100,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   const std::lock_guard<std::mutex> lock(m);
                   spans.insert({begin, end});
                 });
    return spans;
  };
  const ThreadPool pool(3);
  EXPECT_EQ(chunks_of(nullptr), chunks_of(&pool));
}

TEST(ThreadPoolTest, DefaultThreadCountHonoursEnvironment) {
  ::setenv("OMPTUNE_ANALYSIS_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 5u);
  const ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 5u);

  // Out-of-range or garbage values fall back to hardware concurrency.
  ::setenv("OMPTUNE_ANALYSIS_THREADS", "0", 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(ThreadPool::default_thread_count(), hw);
  ::setenv("OMPTUNE_ANALYSIS_THREADS", "banana", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), hw);
  ::unsetenv("OMPTUNE_ANALYSIS_THREADS");
  EXPECT_EQ(ThreadPool::default_thread_count(), hw);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  const ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
  EXPECT_EQ(parallel_reduce<int>(
                &pool, 0, 8, [](int&, std::size_t, std::size_t) {},
                [](int&, int&&) {}),
            0);
}

TEST(ThreadPoolTest, ManySmallBurstsNeverLoseAWakeup) {
  // Lost-wakeup stress for the counted futex wake: thousands of tiny jobs
  // with park-inducing gaps. A submit whose wake is lost leaves a worker
  // asleep forever and the job (or a later one) hangs — the ctest timeout
  // is the failure detector, the count check catches partial execution.
  const ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  constexpr int kBursts = 2000;
  for (int burst = 0; burst < kBursts; ++burst) {
    pool.parallel_for(3, 1, [&](std::size_t begin, std::size_t end,
                                std::size_t) {
      executed.fetch_add(end - begin, std::memory_order_relaxed);
    });
    if (burst % 16 == 0) {
      // Give workers time to run out their spin budget and park, so the
      // next submit exercises the wake-from-parked path, not just spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_EQ(executed.load(), 3u * kBursts);
}

TEST(ThreadPoolTest, SingleChunkJobsLeaveWorkersParkedButWakeable) {
  // A 1-chunk job runs inline on the caller (helpers == 0: wake nobody).
  // After a long run of those, a wide job must still wake the workers.
  const ThreadPool pool(4);
  std::atomic<std::size_t> inline_runs{0};
  for (int i = 0; i < 500; ++i) {
    pool.parallel_for(1, 1, [&](std::size_t, std::size_t, std::size_t) {
      inline_runs.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(inline_runs.load(), 500u);

  std::atomic<std::size_t> wide_chunks{0};
  pool.parallel_for(64, 1, [&](std::size_t, std::size_t, std::size_t) {
    wide_chunks.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(wide_chunks.load(), 64u);
}

}  // namespace
}  // namespace omptune::util
