#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "rt/aligned_alloc.hpp"

namespace omptune::rt {
namespace {

TEST(KmpAllocator, RejectsBadAlignment) {
  EXPECT_THROW(KmpAllocator(0), std::invalid_argument);
  EXPECT_THROW(KmpAllocator(3), std::invalid_argument);
  EXPECT_THROW(KmpAllocator(48), std::invalid_argument);
  EXPECT_NO_THROW(KmpAllocator(64));
  EXPECT_NO_THROW(KmpAllocator(512));
}

class KmpAllocatorAlignment : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KmpAllocatorAlignment, PointerHonoursAlignment) {
  KmpAllocator alloc(GetParam());
  for (const std::size_t bytes : {1u, 7u, 64u, 100u, 4096u}) {
    void* p = alloc.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % GetParam(), 0u)
        << "bytes=" << bytes;
    alloc.deallocate(p);
  }
}

TEST_P(KmpAllocatorAlignment, MemoryIsZeroInitialized) {
  KmpAllocator alloc(GetParam());
  char* p = static_cast<char*>(alloc.allocate(333));
  for (int i = 0; i < 333; ++i) ASSERT_EQ(p[i], 0) << "offset " << i;
  alloc.deallocate(p);
}

INSTANTIATE_TEST_SUITE_P(PaperAlignments, KmpAllocatorAlignment,
                         ::testing::Values(64, 128, 256, 512));

TEST(KmpAllocator, StatsTrackLiveAllocations) {
  KmpAllocator alloc(64);
  EXPECT_EQ(alloc.stats().live_allocations, 0u);
  void* a = alloc.allocate(10);
  void* b = alloc.allocate(100);
  EXPECT_EQ(alloc.stats().live_allocations, 2u);
  EXPECT_EQ(alloc.stats().total_allocations, 2u);
  EXPECT_EQ(alloc.stats().live_bytes, 64u + 128u);  // rounded to alignment
  alloc.deallocate(a);
  EXPECT_EQ(alloc.stats().live_allocations, 1u);
  EXPECT_EQ(alloc.stats().live_bytes, 128u);
  alloc.deallocate(b);
  EXPECT_EQ(alloc.stats().live_allocations, 0u);
  EXPECT_EQ(alloc.stats().live_bytes, 0u);
  EXPECT_EQ(alloc.stats().total_allocations, 2u);
}

TEST(KmpAllocator, DeallocateNullIsNoop) {
  KmpAllocator alloc(64);
  alloc.deallocate(nullptr);
  EXPECT_EQ(alloc.stats().live_allocations, 0u);
}

TEST(KmpArray, PaddedStrideSeparatesElementsByAlignment) {
  KmpAllocator alloc(256);
  KmpArray<double> padded(alloc, 8, /*padded=*/true);
  EXPECT_EQ(padded.stride(), 256u);
  padded[0] = 1.5;
  padded[7] = 2.5;
  EXPECT_DOUBLE_EQ(padded[0], 1.5);
  EXPECT_DOUBLE_EQ(padded[7], 2.5);
  // Each padded element starts on its own cache line.
  const auto addr0 = reinterpret_cast<std::uintptr_t>(&padded[0]);
  const auto addr1 = reinterpret_cast<std::uintptr_t>(&padded[1]);
  EXPECT_EQ(addr1 - addr0, 256u);
}

TEST(KmpArray, UnpaddedIsDense) {
  KmpAllocator alloc(64);
  KmpArray<double> dense(alloc, 4, /*padded=*/false);
  EXPECT_EQ(dense.stride(), sizeof(double));
  for (std::size_t i = 0; i < 4; ++i) dense[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(dense[i], i);
}

TEST(KmpArray, MoveTransfersOwnership) {
  KmpAllocator alloc(64);
  KmpArray<int> a(alloc, 4, false);
  a[0] = 42;
  KmpArray<int> b = std::move(a);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(alloc.stats().live_allocations, 1u);
  KmpArray<int> c;
  c = std::move(b);
  EXPECT_EQ(c[0], 42);
  EXPECT_EQ(alloc.stats().live_allocations, 1u);
}

TEST(KmpArray, DestructionReleasesMemory) {
  KmpAllocator alloc(64);
  {
    KmpArray<double> scoped(alloc, 16, true);
    EXPECT_EQ(alloc.stats().live_allocations, 1u);
  }
  EXPECT_EQ(alloc.stats().live_allocations, 0u);
}

TEST(KmpAllocator, RoundUpHelper) {
  EXPECT_EQ(KmpAllocator::round_up(1, 64), 64u);
  EXPECT_EQ(KmpAllocator::round_up(64, 64), 64u);
  EXPECT_EQ(KmpAllocator::round_up(65, 64), 128u);
}

}  // namespace
}  // namespace omptune::rt
