#include <gtest/gtest.h>

#include <set>

#include "arch/cpu_arch.hpp"
#include "arch/topology.hpp"

namespace omptune::arch {
namespace {

// ---- Table I facts -------------------------------------------------------

TEST(CpuArch, TableOneRows) {
  const auto& archs = all_architectures();
  ASSERT_EQ(archs.size(), 3u);

  const CpuArch& a64fx = architecture(ArchId::A64FX);
  EXPECT_EQ(a64fx.cores, 48);
  EXPECT_EQ(a64fx.numa_nodes, 4);
  EXPECT_DOUBLE_EQ(a64fx.clock_ghz, 1.8);
  EXPECT_EQ(a64fx.memory_type, "HBM");
  EXPECT_EQ(a64fx.memory_gb, 32);
  EXPECT_EQ(a64fx.cacheline_bytes, 256);

  const CpuArch& skylake = architecture(ArchId::Skylake);
  EXPECT_EQ(skylake.cores, 40);
  EXPECT_EQ(skylake.sockets, 2);
  EXPECT_EQ(skylake.numa_nodes, 2);
  EXPECT_DOUBLE_EQ(skylake.clock_ghz, 2.4);
  EXPECT_EQ(skylake.memory_type, "DDR4");
  EXPECT_EQ(skylake.memory_gb, 188);
  EXPECT_EQ(skylake.cacheline_bytes, 64);

  const CpuArch& milan = architecture(ArchId::Milan);
  EXPECT_EQ(milan.cores, 96);
  EXPECT_EQ(milan.sockets, 2);
  EXPECT_EQ(milan.numa_nodes, 8);
  EXPECT_DOUBLE_EQ(milan.clock_ghz, 2.3);
  EXPECT_EQ(milan.memory_gb, 251);
  EXPECT_EQ(milan.cacheline_bytes, 64);
}

TEST(CpuArch, NamesRoundTrip) {
  for (const CpuArch& cpu : all_architectures()) {
    EXPECT_EQ(arch_from_string(to_string(cpu.id)), cpu.id);
    EXPECT_EQ(arch_from_string(cpu.name), cpu.id);
  }
  EXPECT_THROW(arch_from_string("pentium"), std::invalid_argument);
}

TEST(CpuArch, NoiseCalibrationMatchesWilcoxonFindings) {
  // Table III: A64FX repetitions are consistent, the X86 machines are not.
  EXPECT_LT(architecture(ArchId::A64FX).noise_sigma, 0.01);
  EXPECT_GT(architecture(ArchId::Skylake).noise_sigma, 0.01);
  EXPECT_GT(architecture(ArchId::Milan).noise_sigma, 0.01);
}

// ---- Topology invariants -------------------------------------------------

class TopologyInvariants : public ::testing::TestWithParam<ArchId> {};

TEST_P(TopologyInvariants, EveryCoreInExactlyOnePlacePerKind) {
  const Topology topo(architecture(GetParam()));
  for (const PlacesKind kind :
       {PlacesKind::Cores, PlacesKind::LLCaches, PlacesKind::Sockets,
        PlacesKind::NumaDomains, PlacesKind::Threads}) {
    const auto places = topo.places(kind);
    std::set<int> seen;
    for (const Place& p : places) {
      for (const int core : p.cores) {
        EXPECT_TRUE(seen.insert(core).second)
            << "core " << core << " appears twice for " << to_string(kind);
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), topo.num_cores())
        << "place kind " << to_string(kind);
  }
}

TEST_P(TopologyInvariants, PlaceCountsMatchArchitecture) {
  const CpuArch& cpu = architecture(GetParam());
  const Topology topo(cpu);
  EXPECT_EQ(topo.num_places(PlacesKind::Cores), cpu.cores);
  EXPECT_EQ(topo.num_places(PlacesKind::Sockets), cpu.sockets);
  EXPECT_EQ(topo.num_places(PlacesKind::NumaDomains), cpu.numa_nodes);
  EXPECT_EQ(topo.num_places(PlacesKind::LLCaches), cpu.ll_caches);
  EXPECT_EQ(topo.num_places(PlacesKind::Unset), 1);
}

TEST_P(TopologyInvariants, NumaNestsInsideSocket) {
  const Topology topo(architecture(GetParam()));
  for (int c = 0; c < topo.num_cores(); ++c) {
    const CoreLocation& loc = topo.location(c);
    EXPECT_GE(loc.socket, 0);
    EXPECT_GE(loc.numa, 0);
    // Cores of one NUMA domain never straddle sockets on these machines.
    for (int d = 0; d < topo.num_cores(); ++d) {
      if (topo.location(d).numa == loc.numa) {
        EXPECT_EQ(topo.location(d).socket, loc.socket);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, TopologyInvariants,
                         ::testing::Values(ArchId::A64FX, ArchId::Skylake,
                                           ArchId::Milan),
                         [](const auto& info) { return to_string(info.param); });

// ---- Thread placement semantics -------------------------------------------

TEST(Placement, UnboundWhenBindFalseOrUnset) {
  const Topology topo(architecture(ArchId::Skylake));
  for (const BindKind bind : {BindKind::False_, BindKind::Unset}) {
    const auto placement = assign_threads(topo, PlacesKind::Cores, bind, 8);
    EXPECT_FALSE(placement.bound);
    EXPECT_TRUE(placement.place_of_thread.empty());
  }
}

TEST(Placement, MasterPutsAllThreadsOnPlaceZero) {
  const Topology topo(architecture(ArchId::Milan));
  const auto placement =
      assign_threads(topo, PlacesKind::Cores, BindKind::Master, 16);
  ASSERT_TRUE(placement.bound);
  for (const int p : placement.place_of_thread) EXPECT_EQ(p, 0);
}

TEST(Placement, ClosePacksConsecutivePlaces) {
  const Topology topo(architecture(ArchId::Skylake));
  const auto placement =
      assign_threads(topo, PlacesKind::Cores, BindKind::Close, 8);
  ASSERT_TRUE(placement.bound);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(placement.place_of_thread[t], t);
}

TEST(Placement, SpreadCoversSocketsEvenly) {
  const Topology topo(architecture(ArchId::Skylake));  // 40 cores, 2 sockets
  const auto placement =
      assign_threads(topo, PlacesKind::Cores, BindKind::Spread, 2);
  ASSERT_TRUE(placement.bound);
  // Two threads spread over 40 core-places: places 0 and 20 (socket 0 and 1).
  EXPECT_EQ(placement.place_of_thread[0], 0);
  EXPECT_EQ(placement.place_of_thread[1], 20);
}

TEST(Placement, BindingWithoutPlacesFallsBackToCores) {
  const Topology topo(architecture(ArchId::A64FX));
  const auto placement =
      assign_threads(topo, PlacesKind::Unset, BindKind::Close, 4);
  ASSERT_TRUE(placement.bound);
  EXPECT_EQ(placement.place_list.size(), 48u);  // core-granularity fallback
}

TEST(Placement, RejectsNonPositiveThreadCount) {
  const Topology topo(architecture(ArchId::A64FX));
  EXPECT_THROW(assign_threads(topo, PlacesKind::Cores, BindKind::Close, 0),
               std::invalid_argument);
}

// ---- Placement statistics (consumed by the performance model) -------------

TEST(PlacementStats, MasterConcentratesLoadOnOneCore) {
  const Topology topo(architecture(ArchId::Milan));
  const auto stats =
      placement_stats(topo, PlacesKind::Cores, BindKind::Master, 96);
  EXPECT_TRUE(stats.bound);
  EXPECT_EQ(stats.distinct_numa, 1);
  // All 96 threads bound to one core place: massive oversubscription —
  // exactly the worst-performance trend of the paper's RQ4.
  EXPECT_DOUBLE_EQ(stats.max_threads_per_core, 96.0);
}

TEST(PlacementStats, SpreadBalancesNumaDomains) {
  const Topology topo(architecture(ArchId::Milan));
  const auto stats =
      placement_stats(topo, PlacesKind::Cores, BindKind::Spread, 96);
  EXPECT_TRUE(stats.bound);
  EXPECT_EQ(stats.distinct_numa, 8);
  EXPECT_DOUBLE_EQ(stats.max_threads_per_core, 1.0);
  EXPECT_NEAR(stats.numa_balance, 1.0, 1e-9);
}

TEST(PlacementStats, UnboundCoversWholeChip) {
  const Topology topo(architecture(ArchId::Skylake));
  const auto stats =
      placement_stats(topo, PlacesKind::Unset, BindKind::False_, 40);
  EXPECT_FALSE(stats.bound);
  EXPECT_EQ(stats.distinct_numa, 2);
  EXPECT_EQ(stats.distinct_sockets, 2);
}

TEST(PlacementStats, SocketPlacesKeepThreadsWithinOneSocketWhenMaster) {
  const Topology topo(architecture(ArchId::Skylake));
  const auto stats =
      placement_stats(topo, PlacesKind::Sockets, BindKind::Master, 20);
  EXPECT_TRUE(stats.bound);
  EXPECT_EQ(stats.distinct_sockets, 1);
  // 20 threads over a 20-core socket place: one thread per core.
  EXPECT_DOUBLE_EQ(stats.max_threads_per_core, 1.0);
}

class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<ArchId, PlacesKind, BindKind, int>> {};

TEST_P(PlacementProperty, AssignmentsAreWellFormed) {
  const auto [arch_id, places, bind, threads] = GetParam();
  const Topology topo(architecture(arch_id));
  const auto placement = assign_threads(topo, places, bind, threads);
  if (!placement.bound) {
    EXPECT_TRUE(placement.place_of_thread.empty());
    return;
  }
  ASSERT_EQ(placement.place_of_thread.size(), static_cast<std::size_t>(threads));
  for (const int p : placement.place_of_thread) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<int>(placement.place_list.size()));
  }
  const auto stats = placement_stats(topo, places, bind, threads);
  EXPECT_GE(stats.distinct_numa, 1);
  EXPECT_LE(stats.distinct_numa, architecture(arch_id).numa_nodes);
  EXPECT_GE(stats.numa_balance, 0.0);
  EXPECT_LE(stats.numa_balance, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementProperty,
    ::testing::Combine(
        ::testing::Values(ArchId::A64FX, ArchId::Skylake, ArchId::Milan),
        ::testing::Values(PlacesKind::Unset, PlacesKind::Cores,
                          PlacesKind::LLCaches, PlacesKind::Sockets,
                          PlacesKind::NumaDomains),
        ::testing::Values(BindKind::Unset, BindKind::False_, BindKind::True_,
                          BindKind::Master, BindKind::Close, BindKind::Spread),
        ::testing::Values(1, 2, 7, 48, 96, 200)));

TEST(PlacesKindStrings, RoundTrip) {
  for (const PlacesKind kind :
       {PlacesKind::Unset, PlacesKind::Threads, PlacesKind::Cores,
        PlacesKind::LLCaches, PlacesKind::Sockets, PlacesKind::NumaDomains}) {
    EXPECT_EQ(places_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(places_from_string("gpu"), std::invalid_argument);
}

TEST(BindKindStrings, RoundTripAndPrimaryAlias) {
  for (const BindKind kind :
       {BindKind::Unset, BindKind::False_, BindKind::True_, BindKind::Master,
        BindKind::Close, BindKind::Spread}) {
    EXPECT_EQ(bind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(bind_from_string("primary"), BindKind::Master);
  EXPECT_THROW(bind_from_string("sideways"), std::invalid_argument);
}

}  // namespace
}  // namespace omptune::arch
