// Integration tests of the fork-join engine: worksharing loops, reductions
// and barriers executed by real teams under varied configurations.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace omptune::rt {
namespace {

using arch::ArchId;
using arch::architecture;

RtConfig small_config(int threads) {
  RtConfig config = RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = threads;
  config.blocktime_ms = 0;  // passive: kind to the single-core test host
  return config;
}

TEST(ThreadTeam, RunsBodyOnEveryThread) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  std::vector<int> visits(4, 0);
  team.parallel([&visits](TeamContext& ctx) {
    visits[static_cast<std::size_t>(ctx.tid())] += 1;
    EXPECT_EQ(ctx.num_threads(), 4);
  });
  for (const int v : visits) EXPECT_EQ(v, 1);
  EXPECT_EQ(team.stats().parallel_regions, 1u);
}

TEST(ThreadTeam, RepeatedRegionsReuseWorkers) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(3));
  std::atomic<int> total{0};
  for (int i = 0; i < 10; ++i) {
    team.parallel([&total](TeamContext&) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 30);
  EXPECT_EQ(team.stats().parallel_regions, 10u);
}

TEST(ThreadTeam, SerialLibraryModeRunsWithOneThread) {
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = small_config(8);
  config.library = LibraryMode::Serial;
  ThreadTeam team(cpu, config);
  EXPECT_EQ(team.num_threads(), 1);
  int count = 0;
  team.parallel([&count](TeamContext& ctx) {
    EXPECT_EQ(ctx.num_threads(), 1);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadTeam, DefaultThreadCountIsArchitectureCores) {
  // Use A64FX but avoid actually constructing 48 threads on the test host —
  // just check the resolution logic.
  const auto& cpu = architecture(ArchId::A64FX);
  const RtConfig config = RtConfig::defaults_for(cpu);
  EXPECT_EQ(config.effective_num_threads(cpu), 48);
}

class ParallelForAllSchedules : public ::testing::TestWithParam<
                                    std::tuple<ScheduleKind, int, int>> {};

TEST_P(ParallelForAllSchedules, ComputesCorrectVectorSum) {
  const auto [kind, chunk, threads] = GetParam();
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = small_config(threads);
  config.schedule = kind;
  config.chunk = chunk;
  ThreadTeam team(cpu, config);

  constexpr std::int64_t kN = 5000;
  std::vector<double> a(kN), b(kN), out(kN, 0.0);
  for (std::int64_t i = 0; i < kN; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<double>(i);
    b[static_cast<std::size_t>(i)] = 2.0 * static_cast<double>(i);
  }

  team.parallel([&](TeamContext& ctx) {
    ctx.parallel_for(0, kN, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[static_cast<std::size_t>(i)] =
            a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
      }
    });
  });

  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 3.0 * static_cast<double>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelForAllSchedules,
    ::testing::Combine(::testing::Values(ScheduleKind::Static,
                                         ScheduleKind::Dynamic,
                                         ScheduleKind::Guided,
                                         ScheduleKind::Auto),
                       ::testing::Values(0, 7),
                       ::testing::Values(1, 2, 4)));

TEST(ThreadTeam, ParallelForReduceMatchesSerialDotProduct) {
  const auto& cpu = architecture(ArchId::Skylake);
  for (const ReductionMethod method :
       {ReductionMethod::Default, ReductionMethod::Tree,
        ReductionMethod::Critical, ReductionMethod::Atomic}) {
    RtConfig config = small_config(4);
    config.reduction = method;
    ThreadTeam team(cpu, config);

    constexpr std::int64_t kN = 4096;
    std::vector<double> x(kN, 0.5), y(kN, 2.0);
    double result = 0.0;
    team.parallel([&](TeamContext& ctx) {
      const double dot = ctx.parallel_for_reduce(
          0, kN, ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
            double partial = 0.0;
            for (std::int64_t i = lo; i < hi; ++i) {
              partial += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
            }
            return partial;
          });
      if (ctx.tid() == 0) result = dot;
    });
    EXPECT_DOUBLE_EQ(result, 4096.0) << to_string(method);
  }
}

TEST(ThreadTeam, NestedLoopsInOneRegion) {
  const auto& cpu = architecture(ArchId::Milan);
  RtConfig config = small_config(3);
  config.schedule = ScheduleKind::Dynamic;
  ThreadTeam team(cpu, config);

  constexpr std::int64_t kN = 600;
  std::vector<double> data(kN, 1.0);
  double sum = 0.0;
  team.parallel([&](TeamContext& ctx) {
    for (int sweep = 0; sweep < 3; ++sweep) {
      ctx.parallel_for(0, kN, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) data[static_cast<std::size_t>(i)] *= 2.0;
      });
    }
    const double total = ctx.parallel_for_reduce(
        0, kN, ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
          double partial = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) partial += data[static_cast<std::size_t>(i)];
          return partial;
        });
    if (ctx.tid() == 0) sum = total;
  });
  EXPECT_DOUBLE_EQ(sum, 8.0 * kN);
}

TEST(ThreadTeam, BarrierSynchronizesPhases) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  std::atomic<int> arrivals{0};
  team.parallel([&arrivals](TeamContext& ctx) {
    arrivals.fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(arrivals.load(), 4);
  });
}

TEST(ThreadTeam, PlacementExposedForInspection) {
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = small_config(4);
  config.places = arch::PlacesKind::Sockets;
  // bind unset + places set -> spread (derivation) -> bound team.
  ThreadTeam team(cpu, config);
  EXPECT_TRUE(team.placement().bound);
  EXPECT_EQ(team.placement().place_list.size(), 2u);
}

TEST(ThreadTeam, AllocatorUsesConfiguredAlignment) {
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = small_config(2);
  config.align_alloc = 256;
  ThreadTeam team(cpu, config);
  EXPECT_EQ(team.allocator().alignment(), 256u);
}

TEST(ThreadTeam, WaitPolicyAffectsBarrierSleeps) {
  const auto& cpu = architecture(ArchId::Skylake);

  RtConfig passive = small_config(4);
  passive.blocktime_ms = 0;
  ThreadTeam passive_team(cpu, passive);
  for (int i = 0; i < 5; ++i) passive_team.parallel([](TeamContext&) {});

  RtConfig active = small_config(4);
  active.library = LibraryMode::Turnaround;
  ThreadTeam active_team(cpu, active);
  for (int i = 0; i < 5; ++i) active_team.parallel([](TeamContext&) {});

  // Turnaround never blocks on the OS; passive teams do.
  EXPECT_EQ(active_team.stats().barrier_sleeps, 0u);
  EXPECT_GT(passive_team.stats().barrier_sleeps, 0u);
}

TEST(ThreadTeam, CriticalSerializesUpdates) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  long unguarded = 0;  // non-atomic on purpose: protected by critical
  team.parallel([&unguarded](TeamContext& ctx) {
    for (int i = 0; i < 250; ++i) {
      ctx.critical([&unguarded] { unguarded += 1; });
    }
  });
  EXPECT_EQ(unguarded, 4 * 250);
}

TEST(ThreadTeam, SingleExecutesExactlyOncePerCall) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  std::atomic<int> executions{0};
  team.parallel([&executions](TeamContext& ctx) {
    for (int round = 0; round < 10; ++round) {
      ctx.single([&executions] { executions.fetch_add(1); });
    }
  });
  EXPECT_EQ(executions.load(), 10);
}

TEST(ThreadTeam, SingleResetsAcrossRegions) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(3));
  std::atomic<int> executions{0};
  for (int region = 0; region < 5; ++region) {
    team.parallel([&executions](TeamContext& ctx) {
      ctx.single([&executions] { executions.fetch_add(1); });
      ctx.single([&executions] { executions.fetch_add(1); });
    });
  }
  EXPECT_EQ(executions.load(), 10);
}

TEST(ThreadTeam, SingleBarrierOrdersSideEffects) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  int shared = 0;  // written inside single, read by all after its barrier
  std::atomic<int> correct{0};
  team.parallel([&shared, &correct](TeamContext& ctx) {
    ctx.single([&shared] { shared = 42; });
    if (shared == 42) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), 4);
}

TEST(ThreadTeam, MasterRunsOnThreadZeroOnly) {
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, small_config(4));
  std::atomic<int> runs{0};
  std::atomic<int> runner_tid{-1};
  team.parallel([&](TeamContext& ctx) {
    ctx.master([&] {
      runs.fetch_add(1);
      runner_tid.store(ctx.tid());
    });
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(runner_tid.load(), 0);
}

}  // namespace
}  // namespace omptune::rt
