// Performance-model tests: determinism, component sanity, and the
// directional (mechanism-level) behaviours the paper reports.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/all_apps.hpp"
#include "arch/cpu_arch.hpp"
#include "sim/energy_model.hpp"
#include "sim/executor.hpp"
#include "sim/perf_model.hpp"
#include "sweep/config_space.hpp"

namespace omptune::sim {
namespace {

using apps::find_application;
using arch::ArchId;
using arch::architecture;

rt::RtConfig defaults() { return rt::RtConfig{}; }

TEST(PerfModel, PredictIsDeterministic) {
  PerfModel model;
  const auto& app = find_application("cg");
  const auto input = app.input_sizes().back();
  const auto& cpu = architecture(ArchId::Milan);
  const double a = model.predict(app, input, cpu, defaults());
  const double b = model.predict(app, input, cpu, defaults());
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(PerfModel, MeasureIsDeterministicGivenSeeds) {
  PerfModel model;
  const auto& app = find_application("ft");
  const auto input = app.input_sizes().front();
  const auto& cpu = architecture(ArchId::Skylake);
  const double a = model.measure(app, input, cpu, defaults(), 42, 1, 7);
  const double b = model.measure(app, input, cpu, defaults(), 42, 1, 7);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, model.measure(app, input, cpu, defaults(), 42, 2, 7));
  EXPECT_NE(a, model.measure(app, input, cpu, defaults(), 43, 1, 7));
}

TEST(PerfModel, BreakdownComponentsArePositiveAndCompose) {
  PerfModel model;
  for (const auto* app : apps::registry()) {
    for (const ArchId id : {ArchId::A64FX, ArchId::Skylake, ArchId::Milan}) {
      const auto& cpu = architecture(id);
      const auto b =
          model.breakdown(*app, app->default_input(), cpu, defaults());
      EXPECT_GT(b.total_seconds, 0.0) << app->name();
      EXPECT_GE(b.serial_seconds, 0.0);
      EXPECT_GT(b.compute_seconds + b.memory_seconds, 0.0);
      EXPECT_GE(b.region_overhead_seconds, 0.0);
      EXPECT_GE(b.reduction_overhead_seconds, 0.0);
      EXPECT_GE(b.task_idle_factor, 1.0);
      EXPECT_GE(b.imbalance_factor, 1.0);
      EXPECT_GE(b.locality_factor, 1.0);
      EXPECT_GE(b.contention_factor, 1.0);
      const double recomposed =
          (b.serial_seconds + b.compute_seconds + b.memory_seconds +
           b.region_overhead_seconds + b.reduction_overhead_seconds +
           b.schedule_coordination_seconds) *
          b.align_factor;
      EXPECT_NEAR(b.total_seconds, recomposed, 1e-12 * b.total_seconds);
    }
  }
}

TEST(PerfModel, MoreThreadsHelpComputeBoundApps) {
  PerfModel model;
  const auto& ep = find_application("ep");
  const auto& cpu = architecture(ArchId::Skylake);
  rt::RtConfig few = defaults();
  few.num_threads = 4;
  rt::RtConfig many = defaults();
  many.num_threads = 40;
  EXPECT_GT(model.predict(ep, ep.default_input(), cpu, few),
            model.predict(ep, ep.default_input(), cpu, many));
}

// ---- RQ4: the worst-performance trend -------------------------------------

TEST(PerfModel, MasterBindingWithManyThreadsIsTheWorstCase) {
  PerfModel model;
  const auto& bt = find_application("bt");
  const auto& cpu = architecture(ArchId::Milan);

  rt::RtConfig master = defaults();
  master.places = arch::PlacesKind::Cores;
  master.bind = arch::BindKind::Master;

  rt::RtConfig spread = master;
  spread.bind = arch::BindKind::Spread;

  const double t_master = model.predict(bt, bt.default_input(), cpu, master);
  const double t_spread = model.predict(bt, bt.default_input(), cpu, spread);
  const double t_default = model.predict(bt, bt.default_input(), cpu, defaults());
  // Binding 96 threads onto the primary's core place is catastrophic.
  EXPECT_GT(t_master, 10.0 * t_spread);
  EXPECT_GT(t_master, 10.0 * t_default);
}

// ---- Wait-policy mechanism (NQueens / Table VII) --------------------------

TEST(PerfModel, TurnaroundWinsForFineGrainedTasksOnEveryArch) {
  PerfModel model;
  const auto& nq = find_application("nqueens");
  const auto input = nq.input_sizes().back();
  for (const ArchId id : {ArchId::A64FX, ArchId::Skylake, ArchId::Milan}) {
    const auto& cpu = architecture(id);
    rt::RtConfig turnaround = defaults();
    turnaround.library = rt::LibraryMode::Turnaround;
    const double t_default = model.predict(nq, input, cpu, defaults());
    const double t_turn = model.predict(nq, input, cpu, turnaround);
    EXPECT_GT(t_default / t_turn, 1.5) << arch::to_string(id);
  }
}

TEST(PerfModel, TurnaroundBenefitLargestOnA64fx) {
  // Table VI/V shape: NQueens speedup ordering A64FX > Skylake > Milan.
  PerfModel model;
  const auto& nq = find_application("nqueens");
  const auto input = nq.input_sizes().back();
  auto gain = [&](ArchId id) {
    const auto& cpu = architecture(id);
    rt::RtConfig turnaround = defaults();
    turnaround.library = rt::LibraryMode::Turnaround;
    return model.predict(nq, input, cpu, defaults()) /
           model.predict(nq, input, cpu, turnaround);
  };
  EXPECT_GT(gain(ArchId::A64FX), gain(ArchId::Skylake));
  EXPECT_GT(gain(ArchId::Skylake), gain(ArchId::Milan));
}

TEST(PerfModel, PassiveBlocktimeHurtsRegionHeavyLoopApps) {
  PerfModel model;
  const auto& mg = find_application("mg");
  const auto input = mg.input_sizes().front();
  const auto& cpu = architecture(ArchId::Milan);
  rt::RtConfig passive = defaults();
  passive.blocktime_ms = 0;
  EXPECT_GT(model.predict(mg, input, cpu, passive),
            model.predict(mg, input, cpu, defaults()));
}

TEST(PerfModel, CoarseTasksAreInsensitiveToWaitPolicy) {
  PerfModel model;
  const auto& strassen = find_application("strassen");
  const auto input = strassen.input_sizes().back();
  const auto& cpu = architecture(ArchId::A64FX);
  rt::RtConfig turnaround = defaults();
  turnaround.library = rt::LibraryMode::Turnaround;
  const double ratio = model.predict(strassen, input, cpu, defaults()) /
                       model.predict(strassen, input, cpu, turnaround);
  EXPECT_LT(ratio, 1.08);
  EXPECT_GE(ratio, 1.0);
}

// ---- NUMA / placement mechanism (XSBench / Table V) -----------------------

TEST(PerfModel, BindingHelpsXsbenchOnMilanNotOnSkylake) {
  PerfModel model;
  const auto& xs = find_application("xsbench");
  const auto input = xs.default_input();
  auto gain = [&](ArchId id) {
    const auto& cpu = architecture(id);
    rt::RtConfig bound = defaults();
    bound.places = arch::PlacesKind::Cores;
    bound.bind = arch::BindKind::Spread;
    return model.predict(xs, input, cpu, defaults()) /
           model.predict(xs, input, cpu, bound);
  };
  EXPECT_GT(gain(ArchId::Milan), 1.8);      // paper: up to 2.6x
  EXPECT_LT(gain(ArchId::Skylake), 1.1);    // paper: 1.001 - 1.002
  EXPECT_LT(gain(ArchId::A64FX), 1.1);      // paper: 1.004 - 1.015
}

TEST(PerfModel, SchedulePolicyMattersForImbalancedLoops) {
  PerfModel model;
  // Health-like imbalance lives in task apps; among loop apps, BT carries
  // the largest per-iteration variance.
  const auto& bt = find_application("bt");
  const auto input = bt.default_input();
  const auto& cpu = architecture(ArchId::Skylake);
  rt::RtConfig dynamic = defaults();
  dynamic.schedule = rt::ScheduleKind::Dynamic;
  rt::RtConfig guided = defaults();
  guided.schedule = rt::ScheduleKind::Guided;
  const double t_static = model.predict(bt, input, cpu, defaults());
  const double t_guided = model.predict(bt, input, cpu, guided);
  EXPECT_GT(t_static, t_guided);  // guided rebalances with low coordination
  // Dynamic rebalances too, but pays per-chunk coordination.
  EXPECT_GT(model.predict(bt, input, cpu, dynamic), t_guided);
}

TEST(PerfModel, ReductionMethodOrderingAtScale) {
  PerfModel model;
  const auto& cg = find_application("cg");
  const auto input = cg.input_sizes().back();
  const auto& cpu = architecture(ArchId::Skylake);
  auto with_reduction = [&](rt::ReductionMethod m) {
    rt::RtConfig config = defaults();
    config.reduction = m;
    return model.predict(cg, input, cpu, config);
  };
  // At 40 threads the tree wins over serialized critical sections; Table VII
  // flags tree/atomic as CG's best on Skylake.
  EXPECT_LT(with_reduction(rt::ReductionMethod::Tree),
            with_reduction(rt::ReductionMethod::Critical));
  EXPECT_LT(with_reduction(rt::ReductionMethod::Atomic),
            with_reduction(rt::ReductionMethod::Critical));
}

TEST(PerfModel, AlignEffectIsSmall) {
  // Fig. 3: KMP_ALIGN_ALLOC has the least influence.
  PerfModel model;
  for (const auto* app : apps::registry()) {
    const auto& cpu = architecture(ArchId::Skylake);
    rt::RtConfig big = defaults();
    big.align_alloc = 512;
    const double ratio = model.predict(*app, app->default_input(), cpu, defaults()) /
                         model.predict(*app, app->default_input(), cpu, big);
    EXPECT_GT(ratio, 0.97) << app->name();
    EXPECT_LT(ratio, 1.03) << app->name();
  }
}

TEST(PerfModel, NoiseMatchesArchitectureCalibration) {
  PerfModel model;
  const auto& app = find_application("alignment");
  const auto input = app.input_sizes().front();
  auto spread = [&](ArchId id) {
    const auto& cpu = architecture(id);
    double lo = 1e100, hi = 0.0;
    for (int i = 0; i < 200; ++i) {
      const double t = model.measure(app, input, cpu, defaults(), 7, 0,
                                     static_cast<std::uint64_t>(i));
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return hi / lo;
  };
  EXPECT_LT(spread(ArchId::A64FX), 1.02);   // near deterministic
  EXPECT_GT(spread(ArchId::Skylake), 1.05); // noisy shared cluster
  EXPECT_GT(spread(ArchId::Milan), 1.05);
}

TEST(PerfModel, FinitePositiveOverTheWholeSpace) {
  // Property: every (app, arch, config) in the paper's full space yields a
  // finite, strictly positive prediction — guards against degenerate
  // divisions in the composition (placement capacity, saturation, ...).
  PerfModel model;
  for (const ArchId id : {ArchId::A64FX, ArchId::Skylake, ArchId::Milan}) {
    const auto& cpu = architecture(id);
    const auto configs =
        sweep::ConfigSpace::paper_space(cpu).enumerate(/*num_threads=*/0);
    for (const auto* app : apps::registry()) {
      const auto input = app->default_input();
      // Stride through the space to keep the sweep test-sized while still
      // touching every variable value.
      for (std::size_t i = 0; i < configs.size(); i += 7) {
        const double t = model.predict(*app, input, cpu, configs[i]);
        ASSERT_TRUE(std::isfinite(t))
            << app->name() << " " << configs[i].key();
        ASSERT_GT(t, 0.0) << app->name() << " " << configs[i].key();
      }
    }
  }
}

TEST(EnergyModel, EstimatesComposeAndStayPositive) {
  EnergyModel energy;
  for (const auto* app : apps::registry()) {
    const auto& cpu = architecture(ArchId::Milan);
    const auto e = energy.estimate(*app, app->default_input(), cpu,
                                   rt::RtConfig::defaults_for(cpu));
    EXPECT_GT(e.seconds, 0.0) << app->name();
    EXPECT_GT(e.avg_watts, idle_watts(cpu)) << app->name();
    EXPECT_NEAR(e.joules, e.avg_watts * e.seconds, 1e-9 * e.joules) << app->name();
    EXPECT_NEAR(e.edp, e.joules * e.seconds, 1e-9 * e.edp) << app->name();
    EXPECT_GE(e.spin_watts, 0.0) << app->name();
  }
}

TEST(EnergyModel, PassiveWaitingDrawsLessPowerOnIdleHeavyApps) {
  EnergyModel energy;
  const auto& nq = find_application("nqueens");
  const auto& cpu = architecture(ArchId::A64FX);
  rt::RtConfig passive = rt::RtConfig::defaults_for(cpu);
  passive.blocktime_ms = 0;
  rt::RtConfig turnaround = rt::RtConfig::defaults_for(cpu);
  turnaround.library = rt::LibraryMode::Turnaround;
  const auto e_passive = energy.estimate(nq, nq.default_input(), cpu, passive);
  const auto e_turn = energy.estimate(nq, nq.default_input(), cpu, turnaround);
  // Passive: far lower power; turnaround: far lower time AND total energy
  // (the fine-task case where spinning pays for itself).
  EXPECT_LT(e_passive.avg_watts, 0.7 * e_turn.avg_watts);
  EXPECT_LT(e_turn.seconds, e_passive.seconds);
  EXPECT_LT(e_turn.joules, e_passive.joules);
}

TEST(EnergyModel, BalancedAppsSaveEnergyWithPassiveWaiting) {
  EnergyModel energy;
  const auto& ep = find_application("ep");
  const auto& cpu = architecture(ArchId::Milan);
  rt::RtConfig passive = rt::RtConfig::defaults_for(cpu);
  passive.blocktime_ms = 0;
  rt::RtConfig turnaround = rt::RtConfig::defaults_for(cpu);
  turnaround.library = rt::LibraryMode::Turnaround;
  const auto e_passive = energy.estimate(ep, ep.default_input(), cpu, passive);
  const auto e_turn = energy.estimate(ep, ep.default_input(), cpu, turnaround);
  // EP barely waits: times are close, so the policy barely moves energy,
  // and passive never costs MORE energy here.
  EXPECT_NEAR(e_passive.seconds, e_turn.seconds, 0.1 * e_turn.seconds);
  EXPECT_LE(e_passive.joules, e_turn.joules * 1.05);
}

TEST(Runners, ModelRunnerMatchesModelMeasure) {
  ModelRunner runner;
  const auto& app = find_application("lu");
  const auto input = app.input_sizes().front();
  const auto& cpu = architecture(ArchId::Milan);
  const double via_runner = runner.run(app, input, cpu, defaults(), 3, 1, 9);
  const double direct = runner.model().measure(app, input, cpu, defaults(), 3, 1, 9);
  EXPECT_DOUBLE_EQ(via_runner, direct);
}

TEST(Runners, NativeRunnerExecutesAndCapsThreads) {
  NativeRunner runner(/*native_scale=*/0.02, /*max_threads=*/2);
  const auto& app = find_application("ep");
  const auto input = app.input_sizes().front();
  const auto& cpu = architecture(ArchId::Milan);  // 96 cores: must be capped
  const double seconds = runner.run(app, input, cpu, defaults(), 0, 0, 0);
  EXPECT_GT(seconds, 0.0);
  const double reference = app.run_reference(input, 0.02);
  EXPECT_NEAR(runner.last_checksum(), reference,
              1e-9 * std::max(1.0, std::abs(reference)));
}

}  // namespace
}  // namespace omptune::sim
