// Sharded collection must be invisible in the data: shards partition the
// plan, and merging their datasets reproduces the single-run dataset
// exactly (the paper's cluster-batch collection, formalized).

#include <gtest/gtest.h>

#include "sim/executor.hpp"
#include "sim/fault_runner.hpp"
#include "sweep/sharding.hpp"
#include "util/errors.hpp"

namespace omptune::sweep {
namespace {

StudyPlan reduced_plan() {
  StudyPlan plan = StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    for (auto& count : arch_plan.configs_per_setting) count = 40;
  }
  return plan;
}

TEST(Sharding, ShardsPartitionTheSettings) {
  const StudyPlan plan = reduced_plan();
  std::size_t total_settings = 0;
  for (const auto& arch_plan : plan.arch_plans) {
    total_settings += arch_plan.settings.size();
  }
  std::size_t sharded_settings = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const StudyPlan shard = shard_plan(plan, i, 5);
    for (const auto& arch_plan : shard.arch_plans) {
      sharded_settings += arch_plan.settings.size();
    }
  }
  EXPECT_EQ(sharded_settings, total_settings);
  EXPECT_THROW(shard_plan(plan, 5, 5), std::invalid_argument);
  EXPECT_THROW(shard_plan(plan, 0, 0), std::invalid_argument);
}

TEST(Sharding, MergedShardsEqualTheUnshardedRun) {
  const StudyPlan plan = reduced_plan();

  sim::ModelRunner runner_a;
  SweepHarness single(runner_a, 2);
  const Dataset reference = single.run_study(plan);

  std::vector<Dataset> shard_data;
  for (std::size_t i = 0; i < 4; ++i) {
    sim::ModelRunner runner_b;  // fresh runner per "batch job"
    SweepHarness harness(runner_b, 2);
    shard_data.push_back(harness.run_study(shard_plan(plan, i, 4)));
  }
  const Dataset merged = merge_shards(plan, shard_data);

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Sample& a = merged.samples()[i];
    const Sample& b = reference.samples()[i];
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.input, b.input);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.runtimes, b.runtimes);  // bit-identical collection
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
  }
}

TEST(Sharding, MergeDetectsMissingAndDedupesDuplicatedSettings) {
  const StudyPlan plan = reduced_plan();
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);

  // Missing: only one of two shards provided.
  const Dataset half = harness.run_study(shard_plan(plan, 0, 2));
  EXPECT_THROW(merge_shards(plan, {half}), std::invalid_argument);

  // Duplicated: the same shard twice. Re-submitted batch jobs are a normal
  // cluster accident, and the duplicates are identical measurements — the
  // merge must dedupe them (reporting the count), not refuse the merge.
  const Dataset other = harness.run_study(shard_plan(plan, 1, 2));
  MergeReport report;
  const Dataset merged = merge_shards(plan, {half, half, other}, &report);
  EXPECT_EQ(report.duplicate_samples, half.size());

  const Dataset reference = merge_shards(plan, {half, other});
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.samples()[i].config, reference.samples()[i].config);
    EXPECT_EQ(merged.samples()[i].runtimes, reference.samples()[i].runtimes);
  }
}

TEST(Sharding, MergePrefersOkOverQuarantinedDuplicates) {
  // When a setting was re-collected after a bad node quarantined it, the
  // clean measurement must win regardless of shard arrival order.
  const StudyPlan plan = StudyPlan::mini_plan(1, 6);
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);
  const Dataset clean = harness.run_study(shard_plan(plan, 0, 1));

  Dataset poisoned;
  for (Sample s : clean.samples()) {
    s.status = SampleStatus::Quarantined;
    s.error = "simulated node failure";
    poisoned.add(std::move(s));
  }

  for (const auto& shards :
       {std::vector<Dataset>{poisoned, clean}, std::vector<Dataset>{clean, poisoned}}) {
    MergeReport report;
    const Dataset merged = merge_shards(plan, shards, &report);
    EXPECT_EQ(report.duplicate_samples, clean.size());
    EXPECT_EQ(merged.quarantined_count(), 0u);
    ASSERT_EQ(merged.size(), clean.size());
  }
}

TEST(Sharding, ShardCountMayExceedSettings) {
  // More shards than settings: the surplus shards are empty plans, running
  // them yields empty datasets, and the merge still reconstructs the
  // reference exactly.
  const StudyPlan plan = StudyPlan::mini_plan(1, 10);  // 3 settings total
  std::size_t total_settings = 0;
  for (const auto& arch_plan : plan.arch_plans) {
    total_settings += arch_plan.settings.size();
  }
  const std::size_t shard_count = total_settings + 4;

  sim::ModelRunner runner_a;
  SweepHarness single(runner_a, 2);
  const Dataset reference = single.run_study(plan);

  std::vector<Dataset> shard_data;
  std::size_t empty_shards = 0;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const StudyPlan shard = shard_plan(plan, i, shard_count);
    sim::ModelRunner runner_b;
    SweepHarness harness(runner_b, 2);
    shard_data.push_back(harness.run_study(shard));
    if (shard_data.back().size() == 0) ++empty_shards;
  }
  EXPECT_EQ(empty_shards, shard_count - total_settings);

  const Dataset merged = merge_shards(plan, shard_data);
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.samples()[i].runtimes, reference.samples()[i].runtimes);
  }
}

TEST(Sharding, CoordinatorMergeNamesTheShardThatLied) {
  // The coordinator-facing overload turns a plan/shard mismatch into a
  // DataCorruptionError attributing the offending setting's samples to the
  // shard store that contributed them — a mismatch there means a shard
  // store lied, not that the caller passed the wrong plan.
  const StudyPlan plan = StudyPlan::mini_plan(1, 6);
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);
  const Dataset full = harness.run_study(shard_plan(plan, 0, 1));

  // A shard truncated mid-setting: drop the last sample.
  Dataset torn;
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    torn.add(Sample(full.samples()[i]));
  }

  MergeOptions options;
  options.shard_names = {"shards/shard-0.omps"};
  MergeReport report;
  try {
    merge_shards(plan, {torn}, &report, options);
    FAIL() << "a wrong-sized setting must abort a strict coordinator merge";
  } catch (const util::DataCorruptionError& error) {
    EXPECT_EQ(error.file(), "shards/shard-0.omps");
    EXPECT_NE(std::string(error.what()).find("shard-0"), std::string::npos);
  }
}

TEST(Sharding, CoordinatorMergeLenientSkipsWithWarning) {
  const StudyPlan plan = StudyPlan::mini_plan(1, 6);
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);
  const Dataset full = harness.run_study(shard_plan(plan, 0, 1));
  Dataset torn;
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    torn.add(Sample(full.samples()[i]));
  }

  MergeOptions options;
  options.lenient = true;
  std::vector<std::string> warnings;
  options.warn = [&warnings](const std::string& w) { warnings.push_back(w); };
  MergeReport report;
  const Dataset merged = merge_shards(plan, {torn}, &report, options);
  EXPECT_EQ(report.skipped_settings, 1u);
  EXPECT_FALSE(warnings.empty());
  // The skipped setting's samples (6 configs) are absent; everything else
  // merged.
  EXPECT_LT(merged.size(), full.size());
  EXPECT_EQ(merged.size() + 6, full.size());
}

TEST(Sharding, MergeCarriesQuarantinedSamplesAndReportsThem) {
  const StudyPlan plan = StudyPlan::mini_plan(2, 8);

  std::vector<Dataset> shard_data;
  for (std::size_t i = 0; i < 3; ++i) {
    sim::ModelRunner inner;
    sim::FaultSpec spec;
    spec.seed = 17;
    spec.crash_rate = i == 1 ? 0.04 : 0.0;  // only shard 1 is on a bad node
    spec.sticky = true;
    sim::FaultInjectingRunner runner(inner, spec);
    SweepHarness harness(runner, 2);
    StudyRunOptions options;
    options.resilient = true;
    options.resilience.max_retries = 1;
    shard_data.push_back(harness.run_study(shard_plan(plan, i, 3), options));
  }
  std::size_t quarantined_in = 0;
  for (const Dataset& d : shard_data) quarantined_in += d.quarantined_count();
  ASSERT_GT(quarantined_in, 0u) << "fault injection produced no quarantine";

  MergeReport report;
  const Dataset merged = merge_shards(plan, shard_data, &report);
  EXPECT_EQ(merged.quarantined_count(), quarantined_in);
  EXPECT_EQ(report.quarantined_samples, quarantined_in);
  EXPECT_EQ(report.total_samples, merged.size());
  std::size_t reported = 0;
  for (const auto& entry : report.quarantined_settings) {
    reported += entry.quarantined;
  }
  EXPECT_EQ(reported, quarantined_in);
}

}  // namespace
}  // namespace omptune::sweep
