// Multi-host coordinator tests. The core guarantees under test:
//
//  1. Equivalence: a coordinated study (any host/shard split) produces the
//     CSV-canonical identical dataset to the single-process harness, and
//     publishes a byte-stable compacted store.
//  2. Containment: host agents SIGKILLed, wedged, truncating their shard
//     stores, or double-delivering at deterministic chaos points never
//     change the published store — it stays byte-identical to a fault-free
//     run's (the property CI cmp's).
//  3. Durability: the coordinator's write-ahead lease table survives a kill
//     mid-lease (--resume completes to the identical store), and the tiered
//     compactor survives a kill mid-compaction (intermediates are reused,
//     torn ones rebuilt).
//  4. Evidence: a shard that kills every holder exhausts its attempt cap
//     and quarantines with the termination signal on record, gated by
//     deterministic decorrelated-jitter backoff.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/fault_runner.hpp"
#include "store/tiered.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/harness.hpp"
#include "sweep/lease.hpp"
#include "sweep/sharding.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace omptune::sweep {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("omptune_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return util::path_join(path_, name);
  }

 private:
  std::string path_;
};

constexpr int kReps = 2;
constexpr std::uint64_t kSeed = 5;

StudyPlan plan_under_test() { return StudyPlan::mini_plan(2, 6); }

std::string canonical_csv(const Dataset& dataset) {
  std::ostringstream os;
  dataset.to_csv().write(os);
  return os.str();
}

/// The single-process reference: same plan, reps and seed as the
/// coordinated runs, so any divergence is the coordinator's fault.
std::string reference_csv(const StudyPlan& plan) {
  sim::ModelRunner runner;
  SweepHarness harness(runner, kReps, kSeed);
  return canonical_csv(harness.run_study(plan));
}

RunnerFactory model_factory() {
  return [] { return std::make_unique<sim::ModelRunner>(); };
}

CoordinatorOptions base_options() {
  CoordinatorOptions options;
  options.hosts = 2;
  options.shards = 4;
  options.repetitions = kReps;
  options.seed = kSeed;
  options.heartbeat_timeout_ms = 8000;
  options.backoff.base_ms = 1;  // fast re-leases; jitter still applies
  options.backoff.max_ms = 50;
  return options;
}

std::string store_bytes(const std::string& path) {
  const std::optional<std::string> bytes = util::read_file(path);
  EXPECT_TRUE(bytes.has_value()) << path;
  return bytes.value_or("");
}

/// Keep the front half of a store file: a torn write, as a crash leaves it.
void truncate_file(const std::string& path) {
  const std::string bytes = store_bytes(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
}

/// Lowest chaos seed whose first-attempt draw fires `want` on one of the
/// shards — faults are drawn from (seed, shard, attempt) alone, and the
/// first lease carries attempt 0 (the count of prior failures), so the
/// probe is exact for the run itself.
std::uint64_t probe_chaos_seed(const std::string& rates, sim::ShardFault want,
                               std::size_t shards) {
  for (std::uint64_t seed = 1; seed < 4096; ++seed) {
    const sim::ChaosMonkey monkey(
        sim::ChaosSpec::parse("seed=" + std::to_string(seed) + "," + rates));
    for (std::size_t i = 0; i < shards; ++i) {
      if (monkey.draw_shard_fault("shard-" + std::to_string(i), 0) == want) {
        return seed;
      }
    }
  }
  ADD_FAILURE() << "no chaos seed fires " << sim::to_string(want);
  return 1;
}

// ---- lease table ------------------------------------------------------------

TEST(LeaseTable, SerializeParseRoundTripDropsLiveLeases) {
  LeaseTable table(4);
  table.at(0).state = ShardState::Completed;
  table.at(1).state = ShardState::Leased;  // must come back as Pending
  table.at(1).holder = 2;
  table.at(1).attempts = 1;
  table.at(2).state = ShardState::Quarantined;
  table.at(2).attempts = 5;
  table.at(2).evidence = "killed by signal 9\nwith a newline";

  const LeaseTable parsed = LeaseTable::parse(table.serialize());
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed.at(0).state, ShardState::Completed);
  EXPECT_EQ(parsed.at(1).state, ShardState::Pending);
  EXPECT_EQ(parsed.at(1).holder, -1);
  EXPECT_EQ(parsed.at(1).attempts, 1);
  EXPECT_EQ(parsed.at(2).state, ShardState::Quarantined);
  EXPECT_EQ(parsed.at(2).attempts, 5);
  // Evidence survives with the newline flattened (one line per shard).
  EXPECT_NE(parsed.at(2).evidence.find("signal 9"), std::string::npos);
  EXPECT_EQ(parsed.at(2).evidence.find('\n'), std::string::npos);
  EXPECT_EQ(parsed.at(3).state, ShardState::Pending);
}

TEST(LeaseTable, ParseRejectsCorruptState) {
  EXPECT_THROW(LeaseTable::parse("not a lease line"),
               util::DataCorruptionError);
  EXPECT_THROW(LeaseTable::parse("shard 1 pending 0"),  // out-of-order index
               util::DataCorruptionError);
  EXPECT_THROW(LeaseTable::parse("shard 0 haunted 0"),  // unknown state
               util::DataCorruptionError);
  EXPECT_THROW(LeaseTable::parse("shard 0 pending -3"),  // negative attempts
               util::DataCorruptionError);
}

// ---- tiered compaction ------------------------------------------------------

class TieredFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scratch_ = std::make_unique<ScratchDir>("tiered");
    const StudyPlan plan = plan_under_test();
    for (std::size_t i = 0; i < 5; ++i) {
      sim::ModelRunner runner;
      SweepHarness harness(runner, kReps, kSeed);
      const Dataset shard = harness.run_study(shard_plan(plan, i, 5));
      total_samples_ += shard.size();
      const std::string path = scratch_->file("in" + std::to_string(i) + ".omps");
      shard.save_store(path);
      inputs_.push_back(path);
    }
  }

  std::unique_ptr<ScratchDir> scratch_;
  std::vector<std::string> inputs_;
  std::size_t total_samples_ = 0;
};

TEST_F(TieredFixture, FanInNeverChangesTheOutputBytes) {
  const std::string narrow = scratch_->file("narrow.omps");
  const std::string wide = scratch_->file("wide.omps");
  store::TieredOptions narrow_options;
  narrow_options.fan_in = 2;  // 5 inputs: 3 levels of merging
  const store::TieredReport narrow_report =
      store::tiered_compact(inputs_, narrow, narrow_options);
  store::TieredOptions wide_options;
  wide_options.fan_in = 16;  // one flat merge
  const store::TieredReport wide_report =
      store::tiered_compact(inputs_, wide, wide_options);

  EXPECT_GT(narrow_report.tiers, wide_report.tiers);
  EXPECT_EQ(narrow_report.samples_in, total_samples_);
  EXPECT_EQ(narrow_report.samples_out, total_samples_);
  EXPECT_EQ(narrow_report.duplicates_dropped, 0u);
  EXPECT_EQ(store_bytes(narrow), store_bytes(wide))
      << "tier structure leaked into the output";
}

TEST_F(TieredFixture, DuplicateShardStoresDedupeToTheSingleStore) {
  // The same shard delivered twice (a re-submitted batch job): the merge
  // must keep one copy and the bytes must match the non-duplicated merge.
  const std::string once = scratch_->file("once.omps");
  const std::string twice = scratch_->file("twice.omps");
  store::tiered_compact({inputs_[0]}, once);
  store::TieredReport report;
  report = store::tiered_compact({inputs_[0], inputs_[0]}, twice);
  EXPECT_GT(report.duplicates_dropped, 0u);
  EXPECT_EQ(store_bytes(once), store_bytes(twice));
}

TEST_F(TieredFixture, StrictModeNamesTheCorruptInput) {
  truncate_file(inputs_[3]);
  const std::string out = scratch_->file("out.omps");
  try {
    store::tiered_compact(inputs_, out);
    FAIL() << "corrupt input must abort a strict compaction";
  } catch (const util::DataCorruptionError& error) {
    EXPECT_NE(error.file().find("in3.omps"), std::string::npos) << error.file();
  }
}

TEST_F(TieredFixture, LenientModeSkipsTheCorruptInput) {
  const Dataset dropped = Dataset::load_store(inputs_[3]);
  truncate_file(inputs_[3]);
  const std::string out = scratch_->file("out.omps");
  store::TieredOptions options;
  options.lenient = true;
  const store::TieredReport report =
      store::tiered_compact(inputs_, out, options);
  EXPECT_EQ(report.skipped_inputs, 1u);
  EXPECT_EQ(report.samples_out, total_samples_ - dropped.size());
}

TEST_F(TieredFixture, KillMidCompactionResumesToIdenticalBytes) {
  const std::string out = scratch_->file("out.omps");
  store::TieredOptions options;
  options.fan_in = 2;
  options.scratch_dir = scratch_->file("tiers");
  options.keep_scratch = true;
  store::tiered_compact(inputs_, out, options);
  const std::string reference = store_bytes(out);

  // Simulate a compactor killed after the first level: the published store
  // is gone (never made it), one intermediate is torn mid-write, the rest
  // survived. The re-run must adopt the valid intermediates, rebuild the
  // torn one, and publish the identical bytes.
  util::remove_file(out);
  std::vector<std::string> intermediates = util::list_files(options.scratch_dir);
  ASSERT_GT(intermediates.size(), 1u);
  std::sort(intermediates.begin(), intermediates.end());
  truncate_file(util::path_join(options.scratch_dir, intermediates.front()));

  const store::TieredReport resumed =
      store::tiered_compact(inputs_, out, options);
  EXPECT_GT(resumed.reused_intermediates, 0u);
  EXPECT_EQ(store_bytes(out), reference);
}

// ---- coordinator equivalence ------------------------------------------------

TEST(Coordinator, MatchesSingleProcessRun) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("coord_equiv");
  const std::string out = scratch.file("study.omps");
  CoordinatorOptions options = base_options();
  options.hosts = 3;
  Coordinator coordinator(model_factory(), options);
  const Dataset dataset = coordinator.run(plan, out);
  const CoordinatorReport& report = coordinator.report();

  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
  EXPECT_EQ(report.shards_total, 4u);
  EXPECT_EQ(report.shards_completed, report.shards_total);
  EXPECT_EQ(report.host_crashes, 0u);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.store_path, out);
  // A private work directory is removed after a completed run.
  EXPECT_TRUE(report.work_dir.empty());
  EXPECT_EQ(Dataset::load_store(out).size(), dataset.size());
}

TEST(Coordinator, EmptyPlanPublishesEmptyStore) {
  ScratchDir scratch("coord_empty");
  const std::string out = scratch.file("empty.omps");
  Coordinator coordinator(model_factory(), base_options());
  EXPECT_EQ(coordinator.run(StudyPlan{}, out).size(), 0u);
  EXPECT_EQ(Dataset::load_store(out).size(), 0u);
}

// ---- chaos containment ------------------------------------------------------

TEST(Coordinator, ChaosRunStoreIsByteIdenticalToCleanRun) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("coord_chaos");
  const std::string clean = scratch.file("clean.omps");
  const std::string chaotic = scratch.file("chaos.omps");

  CoordinatorOptions clean_options = base_options();
  clean_options.hosts = 3;  // host count is free to differ; shards must match
  Coordinator clean_run(model_factory(), clean_options);
  clean_run.run(plan, clean);

  CoordinatorOptions chaos_options = base_options();
  chaos_options.chaos = sim::ChaosSpec::parse(
      "seed=5,kill=0.3,wedge=0.1,truncate=0.2,dup=0.2");
  chaos_options.max_shard_attempts = 100;  // chaos must never quarantine
  chaos_options.heartbeat_timeout_ms = 1500;
  chaos_options.heartbeat_interval_ms = 10;
  Coordinator chaos_run(model_factory(), chaos_options);
  const Dataset dataset = chaos_run.run(plan, chaotic);
  const CoordinatorReport& report = chaos_run.report();

  EXPECT_GT(report.host_crashes + report.hang_kills + report.truncated_stores +
                report.duplicate_deliveries + report.re_leases,
            0u)
      << "chaos spec fired no faults; the test is vacuous";
  EXPECT_TRUE(report.quarantined_shards.empty());
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
  EXPECT_EQ(store_bytes(clean), store_bytes(chaotic))
      << "chaos leaked into the published store";
}

TEST(Coordinator, TruncatedShardStoreIsDetectedAndRecollected) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("coord_trunc");
  const std::string clean = scratch.file("clean.omps");
  const std::string lied = scratch.file("lied.omps");
  Coordinator clean_run(model_factory(), base_options());
  clean_run.run(plan, clean);

  // A "lying host": publishes a torn store yet reports done. Validation
  // must catch it, strike the shard, and a later attempt repairs it.
  const std::uint64_t seed =
      probe_chaos_seed("truncate=0.6", sim::ShardFault::TruncateStore, 4);
  CoordinatorOptions options = base_options();
  options.chaos =
      sim::ChaosSpec::parse("seed=" + std::to_string(seed) + ",truncate=0.6");
  options.max_shard_attempts = 100;
  Coordinator coordinator(model_factory(), options);
  coordinator.run(plan, lied);
  EXPECT_GT(coordinator.report().truncated_stores, 0u);
  EXPECT_GT(coordinator.report().re_leases, 0u);
  EXPECT_EQ(store_bytes(clean), store_bytes(lied));
}

TEST(Coordinator, DuplicateDeliveryIsIgnoredNotDoubleCounted) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("coord_dup");
  const std::string clean = scratch.file("clean.omps");
  const std::string doubled = scratch.file("doubled.omps");
  Coordinator clean_run(model_factory(), base_options());
  clean_run.run(plan, clean);

  const std::uint64_t seed =
      probe_chaos_seed("dup=0.6", sim::ShardFault::DuplicateDelivery, 4);
  CoordinatorOptions options = base_options();
  options.chaos =
      sim::ChaosSpec::parse("seed=" + std::to_string(seed) + ",dup=0.6");
  Coordinator coordinator(model_factory(), options);
  coordinator.run(plan, doubled);
  EXPECT_GT(coordinator.report().duplicate_deliveries, 0u);
  EXPECT_EQ(store_bytes(clean), store_bytes(doubled));
}

// ---- coordinator kill and resume --------------------------------------------

TEST(Coordinator, KillMidLeaseResumesToByteIdenticalStore) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("coord_resume");
  const std::string clean = scratch.file("clean.omps");
  const std::string resumed = scratch.file("resumed.omps");
  const std::string work_dir = scratch.file("coord");
  Coordinator clean_run(model_factory(), base_options());
  clean_run.run(plan, clean);

  // Stop after the first completed shard, as a SIGKILL of the coordinator
  // would: leases are live, the write-ahead state is mid-study.
  CoordinatorOptions options = base_options();
  options.work_dir = work_dir;
  Coordinator* target = nullptr;
  options.progress = [&target](const std::string& message) {
    if (target != nullptr &&
        message.find(" completed (") != std::string::npos) {
      target->request_stop();
    }
  };
  Coordinator first(model_factory(), options);
  target = &first;
  first.run(plan, resumed);
  ASSERT_TRUE(first.report().interrupted);
  ASSERT_LT(first.report().shards_completed, first.report().shards_total);
  // An interrupted run never publishes the store.
  EXPECT_FALSE(util::file_exists(resumed));

  // A resume under a DIFFERENT configuration must refuse the stale state.
  CoordinatorOptions mismatched = base_options();
  mismatched.work_dir = work_dir;
  mismatched.resume = true;
  mismatched.repetitions = kReps + 1;
  Coordinator wrong(model_factory(), mismatched);
  EXPECT_THROW(wrong.run(plan, resumed), std::invalid_argument);

  CoordinatorOptions resume_options = base_options();
  resume_options.work_dir = work_dir;
  resume_options.resume = true;
  Coordinator second(model_factory(), resume_options);
  const Dataset dataset = second.run(plan, resumed);
  EXPECT_FALSE(second.report().interrupted);
  EXPECT_EQ(second.report().shards_resumed, first.report().shards_completed);
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
  EXPECT_EQ(store_bytes(clean), store_bytes(resumed));
}

TEST(Coordinator, ResumeRequiresAWorkDir) {
  CoordinatorOptions options = base_options();
  options.resume = true;
  EXPECT_THROW(Coordinator(model_factory(), options), std::invalid_argument);
}

// ---- shard quarantine -------------------------------------------------------

TEST(Coordinator, PoisonousShardQuarantinesWithSignalEvidence) {
  const StudyPlan plan = plan_under_test();
  const std::vector<SettingTask> tasks = flatten_plan(plan);
  const std::string poisoned_app = tasks[0].setting.app->name();
  const std::string needle = "/" + poisoned_app + "/";

  CoordinatorOptions options = base_options();
  options.max_shard_attempts = 2;
  options.chaos.sticky_kill_substr = needle;
  std::size_t poisoned_shards = 0;
  for (std::size_t i = 0; i < options.shards; ++i) {
    for (const SettingTask& task : flatten_plan(shard_plan(plan, i, options.shards))) {
      if (task.key.find(needle) != std::string::npos) {
        ++poisoned_shards;
        break;
      }
    }
  }
  ASSERT_GT(poisoned_shards, 0u);

  ScratchDir scratch("coord_poison");
  const std::string out = scratch.file("poisoned.omps");
  Coordinator coordinator(model_factory(), options);
  const Dataset dataset = coordinator.run(plan, out);
  const CoordinatorReport& report = coordinator.report();

  // The study completes; every poisoned shard is quarantined with the
  // termination signal on record, after backoff-gated re-leases.
  EXPECT_EQ(report.shards_completed, report.shards_total);
  ASSERT_EQ(report.quarantined_shards.size(), poisoned_shards);
  for (const QuarantinedShard& q : report.quarantined_shards) {
    EXPECT_EQ(q.attempts, options.max_shard_attempts);
    EXPECT_NE(q.evidence.find("signal 9"), std::string::npos) << q.evidence;
    EXPECT_FALSE(q.setting_keys.empty());
  }
  EXPECT_EQ(report.re_leases, poisoned_shards);  // cap is 2: one re-lease each
  EXPECT_GT(report.backoff_ms_total, 0);
  EXPECT_GT(report.host_crashes, 0u);

  // Quarantining must not change the dataset's shape, and the placeholder
  // samples carry the evidence through to the published store.
  sim::ModelRunner runner;
  SweepHarness harness(runner, kReps, kSeed);
  EXPECT_EQ(dataset.size(), harness.run_study(plan).size());
  EXPECT_GT(dataset.quarantined_count(), 0u);
  const Dataset stored = Dataset::load_store(out);
  EXPECT_EQ(stored.quarantined_count(), dataset.quarantined_count());
  for (const Sample& s : stored.samples()) {
    if (!s.is_quarantined()) continue;
    EXPECT_NE(s.error.find("signal 9"), std::string::npos) << s.error;
  }
}

}  // namespace
}  // namespace omptune::sweep
