// Linear-model tests: linear algebra kernels, standardization, OLS against
// closed-form expectations, logistic regression on separable data, and the
// feature encoding of sweep samples.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/features.hpp"
#include "ml/linalg.hpp"
#include "ml/linear_regression.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/scaler.hpp"
#include "util/rng.hpp"

namespace omptune::ml {
namespace {

TEST(Linalg, SolveKnownSystem) {
  Matrix m(2, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 3;
  const auto x = solve_linear_system(m, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SolveRequiresPivoting) {
  Matrix m(2, 2);
  m.at(0, 0) = 0;  // zero pivot without row exchange
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 0;
  const auto x = solve_linear_system(m, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, SingularSystemThrows) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 4;
  EXPECT_THROW(solve_linear_system(m, {1, 2}), std::runtime_error);
}

TEST(Linalg, GramAndTransposeTimes) {
  Matrix a(3, 2);
  // [[1,2],[3,4],[5,6]]
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  a.at(2, 0) = 5; a.at(2, 1) = 6;
  const Matrix g = a.gram();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 44.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 56.0);
  const auto v = a.transpose_times({1, 1, 1});
  EXPECT_DOUBLE_EQ(v[0], 9.0);
  EXPECT_DOUBLE_EQ(v[1], 12.0);
  const auto w = a.times({1.0, 0.5});
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[2], 8.0);
}

TEST(Scaler, StandardizesColumns) {
  Matrix x(4, 2);
  x.at(0, 0) = 1; x.at(1, 0) = 2; x.at(2, 0) = 3; x.at(3, 0) = 4;
  for (int r = 0; r < 4; ++r) x.at(static_cast<std::size_t>(r), 1) = 7.0;  // constant column
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  double mean0 = 0, var0 = 0;
  for (int r = 0; r < 4; ++r) mean0 += z.at(static_cast<std::size_t>(r), 0);
  mean0 /= 4;
  for (int r = 0; r < 4; ++r) {
    var0 += (z.at(static_cast<std::size_t>(r), 0) - mean0) * (z.at(static_cast<std::size_t>(r), 0) - mean0);
  }
  var0 /= 4;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(var0, 1.0, 1e-12);
  // Constant column standardizes to zeros, not NaNs.
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(z.at(static_cast<std::size_t>(r), 1), 0.0);
}

TEST(Scaler, RequiresFitBeforeTransform) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), std::logic_error);
}

TEST(LinearRegressionTest, RecoversPlantedCoefficients) {
  util::Xoshiro256 rng(3);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (int r = 0; r < 200; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.at(static_cast<std::size_t>(r), 0) = a;
    x.at(static_cast<std::size_t>(r), 1) = b;
    y[static_cast<std::size_t>(r)] = 3.0 * a - 2.0 * b + 0.5;
  }
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 0.5, 1e-6);
  EXPECT_NEAR(model.r_squared(x, y), 1.0, 1e-9);
}

TEST(LinearRegressionTest, PoorFitOnNonLinearData) {
  // The paper's observation: runtimes are not linear in the naive numeric
  // features; R^2 collapses. Reproduce with a V-shaped target.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (int r = 0; r < 100; ++r) {
    const double v = -1.0 + 2.0 * r / 99.0;
    x.at(static_cast<std::size_t>(r), 0) = v;
    y[static_cast<std::size_t>(r)] = std::abs(v);
  }
  LinearRegression model;
  model.fit(x, y);
  EXPECT_LT(model.r_squared(x, y), 0.1);
}

TEST(LogisticRegressionTest, SeparatesLinearlySeparableData) {
  util::Xoshiro256 rng(9);
  Matrix x(300, 2);
  std::vector<int> y(300);
  for (int r = 0; r < 300; ++r) {
    const double a = rng.normal();
    const double b = rng.normal();
    x.at(static_cast<std::size_t>(r), 0) = a;
    x.at(static_cast<std::size_t>(r), 1) = b;
    y[static_cast<std::size_t>(r)] = (2.0 * a - b > 0.0) ? 1 : 0;
  }
  LogisticRegression model;
  model.fit(x, y);
  EXPECT_GT(model.accuracy(x, y), 0.97);
  // Influence proportions reflect the planted 2:1 weight ratio.
  const auto influence = model.normalized_influence();
  EXPECT_NEAR(influence[0] + influence[1], 1.0, 1e-12);
  EXPECT_GT(influence[0], influence[1]);
}

TEST(LogisticRegressionTest, IrrelevantFeatureGetsLowInfluence) {
  util::Xoshiro256 rng(21);
  Matrix x(400, 2);
  std::vector<int> y(400);
  for (int r = 0; r < 400; ++r) {
    const double signal = rng.normal();
    x.at(static_cast<std::size_t>(r), 0) = signal;
    x.at(static_cast<std::size_t>(r), 1) = rng.normal();  // noise
    y[static_cast<std::size_t>(r)] = signal > 0 ? 1 : 0;
  }
  LogisticRegression model;
  model.fit(x, y);
  const auto influence = model.normalized_influence();
  EXPECT_GT(influence[0], 0.85);
  EXPECT_LT(influence[1], 0.15);
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedlyMonotone) {
  Matrix x(100, 1);
  std::vector<int> y(100);
  for (int r = 0; r < 100; ++r) {
    x.at(static_cast<std::size_t>(r), 0) = -2.0 + 4.0 * r / 99.0;
    y[static_cast<std::size_t>(r)] = x.at(static_cast<std::size_t>(r), 0) > 0 ? 1 : 0;
  }
  LogisticRegression model;
  model.fit(x, y);
  const auto proba = model.predict_proba(x);
  for (std::size_t i = 1; i < proba.size(); ++i) {
    EXPECT_GE(proba[i], proba[i - 1] - 1e-12);
  }
}

TEST(LogisticRegressionTest, RejectsBadLabels) {
  Matrix x(2, 1);
  LogisticRegression model;
  EXPECT_THROW(model.fit(x, {0, 2}), std::invalid_argument);
  EXPECT_THROW(model.fit(x, {0}), std::invalid_argument);
  EXPECT_THROW(model.predict(x), std::logic_error);
}

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(800.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-800.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(sigmoid(-1000.0)));
}

TEST(Features, EncodingIsInjectivePerVariable) {
  EXPECT_NE(encode_places(arch::PlacesKind::Cores),
            encode_places(arch::PlacesKind::Sockets));
  EXPECT_NE(encode_bind(arch::BindKind::Master), encode_bind(arch::BindKind::Spread));
  EXPECT_NE(encode_blocktime(0), encode_blocktime(200));
  EXPECT_NE(encode_blocktime(200), encode_blocktime(rt::kBlocktimeInfinite));
  EXPECT_DOUBLE_EQ(encode_align(64), 6.0);
  EXPECT_DOUBLE_EQ(encode_align(512), 9.0);
  EXPECT_LT(encode_input("S"), encode_input("A"));
  EXPECT_NE(encode_arch("a64fx"), encode_arch("milan"));
  EXPECT_NE(encode_app("cg"), encode_app("mg"));
}

TEST(Features, EncoderColumnsFollowOptions) {
  const FeatureEncoder plain{FeatureOptions{}};
  EXPECT_EQ(plain.names().front(), "Input Size");
  EXPECT_EQ(plain.num_features(), 9u);

  FeatureOptions with_arch;
  with_arch.include_architecture = true;
  const FeatureEncoder arch_encoder{with_arch};
  EXPECT_EQ(arch_encoder.names().front(), "Architecture");
  EXPECT_EQ(arch_encoder.num_features(), 10u);

  FeatureOptions with_app;
  with_app.include_application = true;
  const FeatureEncoder app_encoder{with_app};
  EXPECT_EQ(app_encoder.names().front(), "Application");
}

TEST(Features, EncodeSampleAndLabels) {
  sweep::Sample s;
  s.arch = "milan";
  s.app = "xsbench";
  s.input = "large";
  s.threads = 96;
  s.config.places = arch::PlacesKind::Cores;
  s.config.bind = arch::BindKind::Spread;
  s.config.schedule = rt::ScheduleKind::Guided;
  s.config.library = rt::LibraryMode::Turnaround;
  s.config.blocktime_ms = rt::kBlocktimeInfinite;
  s.config.reduction = rt::ReductionMethod::Atomic;
  s.config.align_alloc = 128;
  s.speedup = 1.5;

  FeatureOptions options;
  options.include_architecture = true;
  const FeatureEncoder encoder(options);
  const auto row = encoder.encode_sample(s);
  ASSERT_EQ(row.size(), encoder.num_features());
  EXPECT_DOUBLE_EQ(row[0], encode_arch("milan"));
  EXPECT_DOUBLE_EQ(row[1], encode_input("large"));
  EXPECT_DOUBLE_EQ(row[2], 96.0);  // OMP_NUM_THREADS column
  EXPECT_DOUBLE_EQ(row[3], encode_places(arch::PlacesKind::Cores));

  sweep::Dataset dataset;
  dataset.add(s);
  s.speedup = 1.0;
  dataset.add(s);
  const auto labels = FeatureEncoder::labels(dataset);
  EXPECT_EQ(labels, (std::vector<int>{1, 0}));
  const Matrix x = encoder.encode(dataset);
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), encoder.num_features());
}

}  // namespace
}  // namespace omptune::ml
