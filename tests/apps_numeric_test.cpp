// Numerical sanity of the benchmark kernels beyond checksum equality:
// known closed-form results (NQueens solution counts), statistical
// properties (EP's Marsaglia acceptance rate), scaling behaviour, and
// cross-thread-count determinism of the deterministic kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace omptune::apps {
namespace {

using arch::ArchId;
using arch::architecture;

rt::RtConfig threads_config(int threads) {
  rt::RtConfig config = rt::RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = threads;
  config.blocktime_ms = 0;
  return config;
}

TEST(NqueensNumeric, KnownSolutionCounts) {
  const Application& nq = find_application("nqueens");
  // board_size: small(0.05) * 0.5 = 0.025 -> 8x8 board; * 1.0 = 0.05 -> 10x10.
  const InputSize small = nq.input_sizes().front();
  EXPECT_DOUBLE_EQ(nq.run_reference(small, 0.5), 92.0);    // 8-queens
  EXPECT_DOUBLE_EQ(nq.run_reference(small, 1.0), 724.0);   // 10-queens

  rt::ThreadTeam team(architecture(ArchId::Skylake), threads_config(4));
  EXPECT_DOUBLE_EQ(nq.run_native(team, small, 1.0), 724.0);
}

TEST(EpNumeric, MarsagliaAcceptanceRateIsPiOverFour) {
  // EP's checksum is sx + 2*sy + 0.5*accepted; sx and sy are Gaussian sums
  // centred at zero, so checksum/pairs -> 0.5 * (pi/4) ~ 0.3927.
  const Application& ep = find_application("ep");
  const InputSize input = ep.input_sizes().back();  // A: scale 1.0
  const double native_scale = 0.25;
  const double pairs = std::llround(262144.0 * native_scale);
  const double checksum = ep.run_reference(input, native_scale);
  EXPECT_NEAR(checksum / pairs, 0.5 * M_PI / 4.0, 0.02);
}

TEST(ScalingNumeric, LookupKernelsScaleRoughlyLinearly) {
  // Doubling the lookup count roughly doubles the accumulated cross
  // sections (values are positive and identically distributed).
  for (const char* name : {"rsbench"}) {
    const Application& app = find_application(name);
    const InputSize input = app.default_input();
    const double small = app.run_reference(input, 0.05);
    const double large = app.run_reference(input, 0.10);
    EXPECT_GT(small, 0.0) << name;
    EXPECT_NEAR(large / small, 2.0, 0.35) << name;
  }
}

TEST(DeterminismNumeric, DeterministicAppsAgreeAcrossTeamSizes) {
  for (const char* name : {"nqueens", "sort", "health", "mg", "lulesh"}) {
    const Application& app = find_application(name);
    ASSERT_TRUE(app.deterministic_checksum()) << name;
    const InputSize input = app.input_sizes().front();
    double first = 0.0;
    for (const int threads : {1, 2, 5}) {
      rt::ThreadTeam team(architecture(ArchId::Skylake), threads_config(threads));
      const double checksum = app.run_native(team, input, 0.03);
      if (threads == 1) {
        first = checksum;
      } else {
        EXPECT_DOUBLE_EQ(checksum, first) << name << " threads=" << threads;
      }
    }
  }
}

TEST(DeterminismNumeric, RepeatedRunsAreBitIdentical) {
  const Application& strassen = find_application("strassen");
  const InputSize input = strassen.input_sizes().front();
  rt::ThreadTeam team(architecture(ArchId::Skylake), threads_config(3));
  const double a = strassen.run_native(team, input, 0.05);
  const double b = strassen.run_native(team, input, 0.05);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(InputScaling, LargerInputsMeanMoreWork) {
  // base_seconds (the model's work measure) grows with the input scale.
  for (const Application* app : registry()) {
    const auto sizes = app->input_sizes();
    for (std::size_t i = 1; i < sizes.size(); ++i) {
      EXPECT_LT(app->characteristics(sizes[i - 1]).base_seconds,
                app->characteristics(sizes[i]).base_seconds)
          << app->name();
    }
  }
}

}  // namespace
}  // namespace omptune::apps
