#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "sim/storage_chaos.hpp"
#include "util/backoff.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/futex.hpp"
#include "util/io_hooks.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace omptune::util {
namespace {

// The one BackoffPolicy test for the one implementation shared by
// coordinator leases, supervisor respawns, Keeper restarts and the serve
// client's request retries.
TEST(BackoffPolicy, DelaysAreDeterministicBoundedAndKeyDecorrelated) {
  BackoffPolicy policy;
  policy.base_ms = 10;
  policy.max_ms = 500;
  std::int64_t prev_a = 0;
  std::int64_t prev_b = 0;
  bool keys_diverged = false;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const std::int64_t a = policy.next_delay_ms(7, "shard-0", attempt, prev_a);
    const std::int64_t b = policy.next_delay_ms(7, "shard-1", attempt, prev_b);
    EXPECT_GE(a, policy.base_ms);
    EXPECT_LE(a, policy.max_ms);
    // Decorrelated jitter: the next delay never exceeds 3x the previous.
    if (prev_a > 0) EXPECT_LE(a, std::min<std::int64_t>(policy.max_ms, 3 * prev_a));
    // Determinism: the identical tuple always yields the identical delay.
    EXPECT_EQ(a, policy.next_delay_ms(7, "shard-0", attempt, prev_a));
    if (a != b) keys_diverged = true;
    prev_a = a;
    prev_b = b;
  }
  EXPECT_TRUE(keys_diverged) << "different keys must not retry in lockstep";
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRange) {
  Xoshiro256 rng(9);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[rng.uniform_index(5)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, LognormalFactorCentersAtOne) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += std::log(rng.lognormal_factor(0.1));
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.01);
}

TEST(Rng, StableHashIsStableAndSensitive) {
  EXPECT_EQ(stable_hash("a64fx"), stable_hash("a64fx"));
  EXPECT_NE(stable_hash("a64fx"), stable_hash("milan"));
  EXPECT_NE(stable_hash(""), stable_hash("x"));
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseIntRejectsGarbage) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_DOUBLE_EQ(*parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double("-3e2"), -300.0);
  EXPECT_FALSE(parse_double("1.5.3").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("TurnAround"), "turnaround");
  EXPECT_TRUE(iequals("INFINITE", "infinite"));
  EXPECT_FALSE(iequals("inf", "infinite"));
  EXPECT_TRUE(starts_with("KMP_BLOCKTIME", "KMP_"));
  EXPECT_FALSE(starts_with("OMP", "OMP_"));
}

TEST(Csv, RoundTripWithQuoting) {
  CsvTable table({"app", "config", "runtime"});
  table.add_row({"alignment", "schedule=static,chunk=4", "0.131"});
  table.add_row({"he\"alth", "line1\nline2", "1.0"});

  std::ostringstream os;
  table.write(os);
  // Note: embedded newline rows are quoted, so a line-based reader must see
  // one logical row. Our reader is line-based; verify the quoting instead.
  EXPECT_NE(os.str().find("\"schedule=static,chunk=4\""), std::string::npos);

  CsvTable simple({"a", "b"});
  simple.add_row({"1", "x,y"});
  std::ostringstream os2;
  simple.write(os2);
  std::istringstream is(os2.str());
  const CsvTable parsed = CsvTable::read(is);
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, "b"), "x,y");
  EXPECT_DOUBLE_EQ(parsed.cell_as_double(0, "a"), 1.0);
}

TEST(Csv, SplitLineHandlesEscapedQuotes) {
  const auto fields = csv_split_line("a,\"b\"\"c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b\"c");
}

TEST(Csv, SplitLineRejectsUnterminatedQuote) {
  EXPECT_THROW(csv_split_line("\"abc"), std::runtime_error);
}

TEST(Csv, AddRowRejectsWidthMismatch) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, MissingColumnThrows) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.col_index("nope"), std::out_of_range);
  EXPECT_THROW(table.cell_as_double(0, "nope"), std::out_of_range);
}

TEST(Csv, NonNumericCellThrows) {
  CsvTable table({"a"});
  table.add_row({"abc"});
  EXPECT_THROW(table.cell_as_double(0, "a"), std::invalid_argument);
}

TEST(Env, ScopedEnvSetsAndRestores) {
  unset_env("OMPTUNE_TEST_VAR");
  {
    ScopedEnv guard({{"OMPTUNE_TEST_VAR", "hello"}});
    EXPECT_EQ(get_env("OMPTUNE_TEST_VAR"), "hello");
    {
      ScopedEnv inner({{"OMPTUNE_TEST_VAR", std::nullopt}});
      EXPECT_FALSE(get_env("OMPTUNE_TEST_VAR").has_value());
    }
    EXPECT_EQ(get_env("OMPTUNE_TEST_VAR"), "hello");
  }
  EXPECT_FALSE(get_env("OMPTUNE_TEST_VAR").has_value());
}

TEST(Table, RendersAlignedColumns) {
  TextTable table("TABLE X: demo", {"col", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("TABLE X: demo"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), std::invalid_argument);
}

TEST(Table, HeatMapShadesScaleWithValue) {
  HeatMapRenderer map("Fig X", {"f1", "f2"});
  map.add_row("app", {0.05, 0.95});
  const std::string out = map.render();
  EXPECT_NE(out.find("##"), std::string::npos);   // dark cell
  EXPECT_NE(out.find(" ."), std::string::npos);   // light cell
  EXPECT_THROW(map.add_row("bad", {1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// StorageError taxonomy + the hooked durability helpers (DESIGN.md §14).

std::string fs_temp_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_util_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  create_directories(dir);
  return dir;
}

TEST(StorageError, ClassifiesErrnoAndCarriesContext) {
  // Space/pressure errors are transient (retry may succeed after cleanup);
  // everything else is permanent.
  EXPECT_EQ(StorageError::classify(ENOSPC), ErrorClass::Transient);
  EXPECT_EQ(StorageError::classify(EDQUOT), ErrorClass::Transient);
  EXPECT_EQ(StorageError::classify(EAGAIN), ErrorClass::Transient);
  EXPECT_EQ(StorageError::classify(EINTR), ErrorClass::Transient);
  EXPECT_EQ(StorageError::classify(EIO), ErrorClass::Permanent);
  EXPECT_EQ(StorageError::classify(EACCES), ErrorClass::Permanent);

  const StorageError error("write", "/data/x.omps", ENOSPC);
  EXPECT_EQ(error.error_class(), ErrorClass::Transient);
  EXPECT_EQ(error.operation(), "write");
  EXPECT_EQ(error.path(), "/data/x.omps");
  EXPECT_EQ(error.error_number(), ENOSPC);
  EXPECT_NE(std::string(error.what()).find("/data/x.omps"),
            std::string::npos);
  EXPECT_NE(std::string(error.what()).find(std::to_string(ENOSPC)),
            std::string::npos);
}

TEST(Fs, AtomicWriteSurfacesInjectedErrnoAsStorageError) {
  const std::string dir = fs_temp_dir("enospc");
  const std::string path = path_join(dir, "out.txt");
  sim::StorageFaultPlan plan;
  plan.fail_at_op = 2;  // op 1 = Open, op 2 = the first Write
  plan.fail_errno = ENOSPC;
  sim::StorageChaos chaos(plan);
  {
    ScopedIoHooks scope(&chaos);
    try {
      atomic_write_file(path, "payload");
      FAIL() << "injected ENOSPC did not surface";
    } catch (const StorageError& error) {
      EXPECT_EQ(error.error_number(), ENOSPC);
      EXPECT_EQ(error.error_class(), ErrorClass::Transient);
    }
  }
  // The failed write left no target and no temp file behind.
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(list_files(dir).empty());
  std::filesystem::remove_all(dir);
}

TEST(Fs, WriteLoopsAbsorbInjectedEintrAndShortWrites) {
  const std::string dir = fs_temp_dir("eintr");
  const std::string path = path_join(dir, "out.txt");
  const std::string payload(4096, 'x');
  {
    sim::StorageFaultPlan plan;
    plan.fail_at_op = 2;
    plan.fail_errno = EINTR;  // absorbed by the write retry loop
    sim::StorageChaos chaos(plan);
    ScopedIoHooks scope(&chaos);
    atomic_write_file(path, payload);
  }
  EXPECT_EQ(read_file(path).value(), payload);
  {
    sim::StorageFaultPlan plan;
    plan.short_write_at_op = 2;  // the kernel takes half; the loop continues
    sim::StorageChaos chaos(plan);
    ScopedIoHooks scope(&chaos);
    atomic_write_file(path, payload + payload);
  }
  EXPECT_EQ(read_file(path).value(), payload + payload);
  std::filesystem::remove_all(dir);
}

TEST(Fs, ScopedIoHooksInstallsAndRestores) {
  EXPECT_EQ(io_hooks(), nullptr);
  sim::StorageChaos outer{sim::StorageFaultPlan{}};
  sim::StorageChaos inner{sim::StorageFaultPlan{}};
  {
    ScopedIoHooks a(&outer);
    EXPECT_EQ(io_hooks(), &outer);
    {
      ScopedIoHooks b(&inner);
      EXPECT_EQ(io_hooks(), &inner);
    }
    EXPECT_EQ(io_hooks(), &outer);
  }
  EXPECT_EQ(io_hooks(), nullptr);
}

TEST(Fs, AppendLineDurableRotatesAtCap) {
  const std::string dir = fs_temp_dir("rotate");
  const std::string log = path_join(dir, "a.log");
  // Three 10-byte lines fit a 32-byte cap; the fourth rotates first.
  for (int i = 0; i < 4; ++i) {
    append_line_durable(log, "line-" + std::to_string(i) + "xxx", 32);
  }
  EXPECT_EQ(read_file(log).value(), "line-3xxx\n");
  EXPECT_EQ(read_file(log + ".1").value(),
            "line-0xxx\nline-1xxx\nline-2xxx\n");
  // Cap 0 disables rotation entirely.
  const std::string flat = path_join(dir, "b.log");
  for (int i = 0; i < 4; ++i) {
    append_line_durable(flat, "line-" + std::to_string(i), 0);
  }
  EXPECT_EQ(read_file(flat).value(), "line-0\nline-1\nline-2\nline-3\n");
  EXPECT_FALSE(file_exists(flat + ".1"));
  std::filesystem::remove_all(dir);
}

TEST(Fs, RepairAppendedLogDropsTornTail) {
  const std::string dir = fs_temp_dir("repair");
  const std::string log = path_join(dir, "a.log");
  // Missing and empty files need no repair.
  EXPECT_EQ(repair_appended_log(log), 0u);
  { std::ofstream(log) << ""; }
  EXPECT_EQ(repair_appended_log(log), 0u);
  // A torn tail (no trailing newline) is truncated back to the last
  // complete line.
  { std::ofstream(log) << "complete-1\ncomplete-2\ntorn-tai"; }
  EXPECT_EQ(repair_appended_log(log), 8u);
  EXPECT_EQ(read_file(log).value(), "complete-1\ncomplete-2\n");
  EXPECT_EQ(repair_appended_log(log), 0u);  // idempotent
  // A file that is ALL torn tail truncates to empty.
  { std::ofstream(log, std::ios::trunc) << "only-torn"; }
  EXPECT_EQ(repair_appended_log(log), 9u);
  EXPECT_EQ(read_file(log).value(), "");
  std::filesystem::remove_all(dir);
}

TEST(Fs, ReadFileAppliesBitrotHook) {
  const std::string dir = fs_temp_dir("bitrot");
  const std::string path = path_join(dir, "data.bin");
  const std::string payload(256, 'y');
  atomic_write_file(path, payload);
  sim::StorageFaultPlan plan;
  plan.bitrot_seed = 42;
  sim::StorageChaos chaos(plan);
  ScopedIoHooks scope(&chaos);
  const std::string rotted = read_file(path).value();
  EXPECT_EQ(rotted.size(), payload.size());
  EXPECT_NE(rotted, payload);  // exactly one byte differs
  EXPECT_EQ(read_file(path).value(), rotted);  // deterministic per path
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// futex_wait/futex_wake contract (util/futex.hpp). These run against
// whichever backend is active — the kernel syscall or the parking-lot
// fallback; the `util_futex_fallback` ctest entry re-runs them with
// OMPTUNE_NO_FUTEX=1 so the fallback gets coverage on Linux too.
// ---------------------------------------------------------------------------

TEST(Futex, BackendNameMatchesEnvironment) {
  const std::string backend = futex_backend();
  EXPECT_TRUE(backend == "futex" || backend == "parking-lot") << backend;
  if (get_env("OMPTUNE_NO_FUTEX")) EXPECT_EQ(backend, "parking-lot");
}

TEST(Futex, StaleValueReturnsImmediately) {
  // Waker changed the word before we got to sleep: the value check must
  // keep us from blocking (this is the missed-wakeup defence).
  std::atomic<std::uint32_t> word{7};
  futex_wait(word, 6);  // word != old: returns without sleeping
}

TEST(Futex, WakeBeforeWaitIsNotLost) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    // Canonical loop from the header comment.
    std::uint32_t seen = word.load(std::memory_order_acquire);
    while (seen == 0) {
      futex_wait(word, seen);
      seen = word.load(std::memory_order_acquire);
    }
    released.store(true, std::memory_order_release);
  });
  // Change-then-wake from this side races freely against the waiter; the
  // protocol must converge regardless of interleaving.
  word.store(1, std::memory_order_release);
  futex_wake_all(word);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(Futex, ManyWaitersAllReleased) {
  constexpr int kWaiters = 8;
  std::atomic<std::uint32_t> word{0};
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      std::uint32_t seen = word.load(std::memory_order_acquire);
      while (seen == 0) {
        futex_wait(word, seen);
        seen = word.load(std::memory_order_acquire);
      }
      woken.fetch_add(1, std::memory_order_relaxed);
    });
  }
  word.store(1, std::memory_order_release);
  // Wake in dribs to exercise the counted path as well as the broadcast.
  futex_wake(word, 2);
  futex_wake_all(word);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST(Futex, WakeWithNoWaitersIsANoOp) {
  std::atomic<std::uint32_t> word{3};
  EXPECT_GE(futex_wake(word, 4), 0);
  EXPECT_GE(futex_wake_all(word), 0);
  EXPECT_EQ(futex_wake(word, 0), 0);
  EXPECT_EQ(futex_wake(word, -1), 0);
}

}  // namespace
}  // namespace omptune::util
