// Tasking subsystem tests: spawn/taskwait semantics, work stealing, and
// recursive task trees of the shape the BOTS benchmarks use.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/task.hpp"
#include "rt/thread_team.hpp"

namespace omptune::rt {
namespace {

using arch::ArchId;
using arch::architecture;

RtConfig task_config(int threads) {
  RtConfig config = RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = threads;
  config.blocktime_ms = 0;
  return config;
}

TEST(TaskPool, ExecutesSpawnedTasks) {
  TaskPool pool(1, WaitBehavior{});
  pool.enter_region(0);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.spawn(0, [&count] { count.fetch_add(1); });
  }
  pool.drain(0);
  pool.leave_region(0);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.stats().spawned, 100u);
  EXPECT_EQ(pool.stats().executed, 100u);
}

TEST(TaskPool, TaskwaitWaitsForDirectChildren) {
  TaskPool pool(1, WaitBehavior{});
  pool.enter_region(0);
  std::atomic<int> done{0};
  pool.spawn(0, [&] {
    // Inside this task, spawn children and wait for them.
    pool.spawn(0, [&done] { done.fetch_add(1); });
    pool.spawn(0, [&done] { done.fetch_add(1); });
    pool.taskwait(0);
    EXPECT_EQ(done.load(), 2);
    done.fetch_add(10);
  });
  pool.drain(0);
  pool.leave_region(0);
  EXPECT_EQ(done.load(), 12);
}

TEST(TaskPool, RegionDisciplineEnforced) {
  TaskPool pool(1, WaitBehavior{});
  EXPECT_THROW(pool.spawn(0, [] {}), std::logic_error);
  EXPECT_THROW(pool.taskwait(0), std::logic_error);
  pool.enter_region(0);
  EXPECT_THROW(pool.enter_region(0), std::logic_error);
  pool.drain(0);
  pool.leave_region(0);
}

TEST(TaskPool, WorkIsStolenAcrossThreads) {
  constexpr int kTeam = 4;
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, task_config(kTeam));
  std::atomic<int> executed{0};
  // On an oversubscribed host the seeding thread can occasionally drain its
  // own deque before any worker wakes; repeat the region until a steal is
  // observed (it virtually always happens on the first attempt).
  for (int attempt = 0; attempt < 20 && team.stats().tasks.steals == 0; ++attempt) {
    team.parallel([&](TeamContext& ctx) {
      ctx.run_task_root([&ctx, &executed] {
        // All tasks seeded on thread 0; others must steal to participate.
        for (int i = 0; i < 400; ++i) {
          ctx.spawn([&executed] {
            executed.fetch_add(1);
            // A little work so stealing has time to happen.
            volatile double x = 0;
            for (int k = 0; k < 500; ++k) x = x + k;
          });
        }
      });
    });
  }
  EXPECT_EQ(executed.load() % 400, 0);
  EXPECT_GT(executed.load(), 0);
  EXPECT_GT(team.stats().tasks.steals, 0u);
}

// Recursive fibonacci via the task tree: the canonical BOTS/NQueens shape.
int fib_serial(int n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

void fib_task(TeamContext& ctx, int n, std::atomic<long>& acc) {
  if (n < 2) {
    acc.fetch_add(n);
    return;
  }
  // Manual continuation: spawn both halves; completion via counters.
  ctx.spawn([&ctx, n, &acc] { fib_task(ctx, n - 1, acc); });
  ctx.spawn([&ctx, n, &acc] { fib_task(ctx, n - 2, acc); });
  ctx.taskwait();
}

TEST(TaskPool, RecursiveTaskTreeComputesFibonacci) {
  constexpr int kTeam = 3;
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, task_config(kTeam));
  std::atomic<long> acc{0};
  team.parallel([&](TeamContext& ctx) {
    ctx.run_task_root([&ctx, &acc] { fib_task(ctx, 15, acc); });
  });
  EXPECT_EQ(acc.load(), fib_serial(15));
}

TEST(TaskPool, TasksSpawnedByAllThreads) {
  constexpr int kTeam = 4;
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, task_config(kTeam));
  std::atomic<int> executed{0};
  team.parallel([&](TeamContext& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.spawn([&executed] { executed.fetch_add(1); });
    }
    // Implicit drain at region end collects everything.
  });
  EXPECT_EQ(executed.load(), 25 * kTeam);
}

TEST(TaskPool, NestedTaskwaitDoesNotDeadlockUnderStealing) {
  constexpr int kTeam = 4;
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = task_config(kTeam);
  config.library = LibraryMode::Turnaround;  // spin-idle path
  ThreadTeam team(cpu, config);
  std::atomic<int> leaves{0};
  std::function<void(TeamContext&, int)> recurse = [&](TeamContext& ctx, int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    for (int i = 0; i < 3; ++i) {
      ctx.spawn([&recurse, &ctx, depth] { recurse(ctx, depth - 1); });
    }
    ctx.taskwait();
  };
  team.parallel([&](TeamContext& ctx) {
    ctx.run_task_root([&] { recurse(ctx, 5); });
  });
  EXPECT_EQ(leaves.load(), 3 * 3 * 3 * 3 * 3);
}

// Regression: a stolen task's closure captures the SPAWNING thread's
// context; spawn/taskwait must nevertheless act on the EXECUTING thread
// (waiting on another thread's current task deadlocked intermittently).
TEST(TaskPool, StolenTasksResolveTheExecutingThread) {
  constexpr int kTeam = 4;
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, task_config(kTeam));
  std::atomic<long> leaves{0};
  // Many short rounds maximize the chance that nested spawns run on a
  // thief; before the TLS fix this hung within a few rounds.
  for (int round = 0; round < 30; ++round) {
    team.parallel([&](TeamContext& ctx) {
      ctx.run_task_root([&ctx, &leaves] {
        for (int i = 0; i < 24; ++i) {
          ctx.spawn([&ctx, &leaves] {
            // Nested spawn + taskwait from whatever thread stole this task,
            // through the captured (root thread's) context.
            ctx.spawn([&leaves] { leaves.fetch_add(1); });
            ctx.spawn([&leaves] { leaves.fetch_add(1); });
            ctx.taskwait();
          });
        }
      });
    });
  }
  EXPECT_EQ(leaves.load(), 30L * 24L * 2L);
}

TEST(TaskPool, ResolveTidFallsBackForUnregisteredThreads) {
  TaskPool pool(2, WaitBehavior{});
  EXPECT_EQ(pool.resolve_tid(7), 7);  // this thread is not registered
  pool.enter_region(0);
  EXPECT_EQ(pool.resolve_tid(7), 0);  // now it is
  pool.drain(0);
  pool.leave_region(0);
  EXPECT_EQ(pool.resolve_tid(7), 7);
}

TEST(TaskPool, StatsCountIdlePolls) {
  constexpr int kTeam = 2;
  const auto& cpu = architecture(ArchId::Skylake);
  ThreadTeam team(cpu, task_config(kTeam));
  team.parallel([](TeamContext&) {});
  // The drain at region end polls at least once per idle thread.
  EXPECT_GE(team.stats().tasks.idle_polls, 0u);
}

}  // namespace
}  // namespace omptune::rt
