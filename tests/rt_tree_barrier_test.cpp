// Tree barrier tests: synchronization correctness over repeated rounds,
// varied team sizes and wait policies, plus the taskloop construct that
// complements the worksharing loop.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"
#include "rt/tree_barrier.hpp"

namespace omptune::rt {
namespace {

class TreeBarrierRounds : public ::testing::TestWithParam<int> {};

TEST_P(TreeBarrierRounds, SynchronizesEveryRound) {
  const int team = GetParam();
  constexpr int kRounds = 25;
  TreeBarrier barrier(team);
  std::atomic<int> counter{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&barrier, &counter, t, team] {
        for (int round = 0; round < kRounds; ++round) {
          counter.fetch_add(1);
          barrier.arrive_and_wait(t);
          // After each round every thread must have contributed.
          ASSERT_EQ(counter.load() % team, 0);
          barrier.arrive_and_wait(t);
        }
      });
    }
  }
  EXPECT_EQ(counter.load(), team * kRounds);
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, TreeBarrierRounds,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(TreeBarrier, PassivePolicySleepsActiveDoesNot) {
  WaitBehavior passive;
  passive.policy = WaitPolicy::Passive;
  TreeBarrier sleepy(2, passive);
  {
    std::jthread other([&sleepy] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      sleepy.arrive_and_wait(1);
    });
    sleepy.arrive_and_wait(0);
  }
  EXPECT_GE(sleepy.sleep_count(), 1u);

  WaitBehavior active;
  active.policy = WaitPolicy::Active;
  TreeBarrier spinner(2, active);
  {
    std::jthread other([&spinner] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      spinner.arrive_and_wait(1);
    });
    spinner.arrive_and_wait(0);
  }
  EXPECT_EQ(spinner.sleep_count(), 0u);
}

TEST(TreeBarrier, RejectsBadArguments) {
  EXPECT_THROW(TreeBarrier(0), std::invalid_argument);
  TreeBarrier barrier(2);
  EXPECT_THROW(barrier.arrive_and_wait(-1), std::out_of_range);
  EXPECT_THROW(barrier.arrive_and_wait(2), std::out_of_range);
}

TEST(TreeBarrier, SingleThreadPassesImmediately) {
  TreeBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait(0);
  EXPECT_EQ(barrier.sleep_count(), 0u);
}

// ---- taskloop -------------------------------------------------------------

RtConfig taskloop_config(int threads) {
  RtConfig config = RtConfig::defaults_for(
      arch::architecture(arch::ArchId::Skylake));
  config.num_threads = threads;
  config.blocktime_ms = 0;
  return config;
}

TEST(Taskloop, CoversIterationSpaceExactlyOnce) {
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  ThreadTeam team(cpu, taskloop_config(4));
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  team.parallel([&hits](TeamContext& ctx) {
    ctx.taskloop(0, kN, /*grainsize=*/97, [&hits](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(Taskloop, DefaultGrainSpawnsAboutFourChunksPerThread) {
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  ThreadTeam team(cpu, taskloop_config(4));
  std::atomic<int> chunks{0};
  team.parallel([&chunks](TeamContext& ctx) {
    ctx.taskloop(0, 1 << 16, 0, [&chunks](std::int64_t, std::int64_t) {
      chunks.fetch_add(1);
    });
  });
  EXPECT_GE(chunks.load(), 15);
  EXPECT_LE(chunks.load(), 17);
}

TEST(Taskloop, EmptyRangeSpawnsNothing) {
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  ThreadTeam team(cpu, taskloop_config(2));
  std::atomic<int> calls{0};
  team.parallel([&calls](TeamContext& ctx) {
    ctx.taskloop(5, 5, 1, [&calls](std::int64_t, std::int64_t) { calls.fetch_add(1); });
    ctx.taskloop(7, 3, 1, [&calls](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Taskloop, MatchesParallelForResult) {
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  constexpr std::int64_t kN = 4096;
  std::vector<double> a(kN), b(kN);
  for (std::int64_t i = 0; i < kN; ++i) a[static_cast<std::size_t>(i)] = static_cast<double>(i);

  ThreadTeam team(cpu, taskloop_config(3));
  team.parallel([&](TeamContext& ctx) {
    ctx.taskloop(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        b[static_cast<std::size_t>(i)] = 2.0 * a[static_cast<std::size_t>(i)];
      }
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_DOUBLE_EQ(b[static_cast<std::size_t>(i)], 2.0 * static_cast<double>(i));
  }
}

}  // namespace
}  // namespace omptune::rt
