// CalibrationTable tests: the fallback table must reproduce the historical
// perf-model constants bit-for-bit (default model == fallback model ==
// checked-in docs/calibration/fallback.cal), serialization must round-trip
// exactly, and foreign/corrupt tables must be rejected loudly.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/all_apps.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/calibration.hpp"
#include "rt/config.hpp"
#include "sim/perf_model.hpp"

#ifndef OMPTUNE_REPO_DIR
#define OMPTUNE_REPO_DIR "."
#endif

namespace omptune {
namespace {

using arch::ArchId;
using arch::architecture;

const char* kFallbackPath = OMPTUNE_REPO_DIR "/docs/calibration/fallback.cal";

TEST(CalibrationTable, DefaultEqualsFallback) {
  EXPECT_TRUE(rt::CalibrationTable{} == rt::CalibrationTable::fallback());
}

TEST(CalibrationTable, SerializeRoundTripsExactly) {
  rt::CalibrationTable table = rt::CalibrationTable::fallback();
  table.park_unpark_us = 2.718281828459045;
  table.barrier_phase_us["dissemination.t16"] = 0.1 + 0.2;  // non-exact sum
  const rt::CalibrationTable parsed =
      rt::CalibrationTable::parse(table.serialize());
  EXPECT_TRUE(parsed == table);
}

TEST(CalibrationTable, CheckedInFallbackMatchesBuiltin) {
  const rt::CalibrationTable loaded = rt::CalibrationTable::load(kFallbackPath);
  EXPECT_TRUE(loaded == rt::CalibrationTable::fallback())
      << "docs/calibration/fallback.cal has drifted from the built-in "
         "constants; regenerate it from CalibrationTable::fallback()";
}

TEST(CalibrationTable, RejectsForeignVersionUnknownKeyAndGarbage) {
  EXPECT_THROW(rt::CalibrationTable::parse("omptune-calibration v2\n"),
               std::runtime_error);
  EXPECT_THROW(rt::CalibrationTable::parse("chunk_grab_us=1\n"),
               std::runtime_error);  // missing version line
  EXPECT_THROW(rt::CalibrationTable::parse(
                   "omptune-calibration v1\nno_such_key=1\n"),
               std::runtime_error);
  EXPECT_THROW(rt::CalibrationTable::parse(
                   "omptune-calibration v1\nchunk_grab_us=abc\n"),
               std::runtime_error);
  EXPECT_THROW(rt::CalibrationTable::parse(
                   "omptune-calibration v1\nchunk_grab_us\n"),
               std::runtime_error);
  EXPECT_THROW(rt::CalibrationTable::load("/no/such/file.cal"),
               std::runtime_error);
}

TEST(CalibrationTable, CommentsAndBlankLinesAreIgnored) {
  const rt::CalibrationTable parsed = rt::CalibrationTable::parse(
      "# header comment\n\nomptune-calibration v1\n# mid comment\n"
      "chunk_grab_us=0.5\n\nbarrier.central.t2=1.25\n");
  EXPECT_DOUBLE_EQ(parsed.chunk_grab_us, 0.5);
  EXPECT_DOUBLE_EQ(parsed.barrier_phase_us.at("central.t2"), 1.25);
}

// ---------------------------------------------------------------------------
// Bit-compatibility: a PerfModel built from the fallback table (built-in or
// loaded from the checked-in file) predicts exactly what the default model
// predicts, across a grid of apps x archs x configs.
// ---------------------------------------------------------------------------

std::vector<rt::RtConfig> config_grid(const arch::CpuArch& cpu) {
  std::vector<rt::RtConfig> grid;
  for (const rt::WaitPolicy policy :
       {rt::WaitPolicy::Active, rt::WaitPolicy::SpinThenSleep,
        rt::WaitPolicy::Passive}) {
    for (const rt::ScheduleKind schedule :
         {rt::ScheduleKind::Static, rt::ScheduleKind::Dynamic,
          rt::ScheduleKind::Guided}) {
      rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
      config.schedule = schedule;
      switch (policy) {
        case rt::WaitPolicy::Active:
          config.blocktime_ms = rt::kBlocktimeInfinite;
          break;
        case rt::WaitPolicy::SpinThenSleep:
          config.blocktime_ms = 200;
          break;
        case rt::WaitPolicy::Passive:
          config.blocktime_ms = 0;
          break;
      }
      grid.push_back(config);
    }
  }
  return grid;
}

TEST(CalibrationTable, FallbackModelIsBitCompatible) {
  const sim::PerfModel plain;
  const sim::PerfModel from_builtin(rt::CalibrationTable::fallback());
  const sim::PerfModel from_file(rt::CalibrationTable::load(kFallbackPath));

  int compared = 0;
  for (const char* app_name : {"cg", "nqueens", "xsbench", "lulesh"}) {
    const auto& app = apps::find_application(app_name);
    const auto input = app.default_input();
    for (const ArchId arch_id : {ArchId::Skylake, ArchId::Milan, ArchId::A64FX}) {
      const auto& cpu = architecture(arch_id);
      for (const rt::RtConfig& config : config_grid(cpu)) {
        const double expected = plain.predict(app, input, cpu, config);
        EXPECT_EQ(from_builtin.predict(app, input, cpu, config), expected);
        EXPECT_EQ(from_file.predict(app, input, cpu, config), expected);
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 100);
}

TEST(CalibrationTable, MeasuredTableActuallyChangesPredictions) {
  rt::CalibrationTable table = rt::CalibrationTable::fallback();
  table.region_passive_per_thread_us *= 4.0;
  const sim::PerfModel plain;
  const sim::PerfModel tuned(table);

  const auto& app = apps::find_application("cg");
  const auto& cpu = architecture(ArchId::Skylake);
  rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
  config.blocktime_ms = 0;  // passive: the scaled term is live
  EXPECT_GT(tuned.predict(app, app.default_input(), cpu, config),
            plain.predict(app, app.default_input(), cpu, config));
}

}  // namespace
}  // namespace omptune
