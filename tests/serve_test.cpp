// The tuning service end to end: the wire protocol must round-trip every
// message type and reject malformed bytes as typed WireErrors; the reply
// cache must behave as a generation-keyed LRU; a snapshot must answer
// exactly what the analysis stack answers offline; and the server must
// batch, shed, hot-swap and drain over a real unix socket — including the
// headline guarantee that a hot-swap mid-load drops zero in-flight
// queries.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <set>
#include <thread>

#include "core/tuner.hpp"
#include "analysis/marginals.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "sim/executor.hpp"
#include "store/writer.hpp"
#include "sweep/harness.hpp"
#include "util/fs.hpp"
#include "util/process.hpp"

namespace omptune {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_serve_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  return dir;
}

sweep::Dataset study_dataset(std::uint64_t seed) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3, seed);
  return harness.run_study(sweep::StudyPlan::mini_plan(2, 6));
}

/// Write a small study store and remember an (app, arch) pair it contains.
struct StoreFixture {
  std::string path;
  std::string app;
  std::string arch;
  sweep::Dataset dataset;

  StoreFixture(const std::string& dir, const std::string& name,
               std::uint64_t seed)
      : path(util::path_join(dir, name)), dataset(study_dataset(seed)) {
    store::write_store(path, dataset);
    app = dataset.samples().front().app;
    arch = dataset.samples().front().arch;
  }
};

/// run() on a background thread, with exceptions carried back to the test.
struct TestServer {
  serve::Server server;
  std::thread thread;
  std::exception_ptr error;

  TestServer(std::vector<std::string> stores, serve::ServerOptions options)
      : server(std::move(stores), std::move(options)) {
    thread = std::thread([this] {
      try {
        server.run();
      } catch (...) {
        error = std::current_exception();
      }
    });
    const std::int64_t deadline = util::monotonic_ms() + 10000;
    while (!server.ready() && util::monotonic_ms() < deadline) {
      if (error) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (error) std::rethrow_exception(error);
    EXPECT_TRUE(server.ready());
  }

  void stop_and_join() {
    server.request_stop();
    if (thread.joinable()) thread.join();
    if (error) std::rethrow_exception(error);
  }

  ~TestServer() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }
};

serve::Request recommend_request(const std::string& app,
                                 const std::string& arch) {
  serve::Request request;
  request.type = serve::MsgType::Recommend;
  request.app = app;
  request.arch = arch;
  return request;
}

// ---- wire ------------------------------------------------------------------

TEST(ServeWire, RequestsRoundTrip) {
  serve::Request request;
  request.type = serve::MsgType::BestSetting;
  request.app = "xsbench";
  request.arch = "milan";
  request.input = "large";
  request.threads = 48;
  std::string bytes;
  serve::encode_request(bytes, request);
  ASSERT_EQ(serve::frame_size(bytes), bytes.size());
  const serve::Request decoded =
      serve::decode_request(std::string_view(bytes).substr(4));
  EXPECT_EQ(decoded.type, request.type);
  EXPECT_EQ(decoded.app, request.app);
  EXPECT_EQ(decoded.arch, request.arch);
  EXPECT_EQ(decoded.input, request.input);
  EXPECT_EQ(decoded.threads, request.threads);

  serve::Request swap;
  swap.type = serve::MsgType::Swap;
  swap.store_paths = {"a.omps", "b.omps", "c.omps"};
  bytes.clear();
  serve::encode_request(bytes, swap);
  EXPECT_EQ(serve::decode_request(std::string_view(bytes).substr(4)).store_paths,
            swap.store_paths);
}

TEST(ServeWire, ResponsesRoundTrip) {
  serve::Response response;
  response.type = serve::MsgType::RecommendReply;
  response.generation = 7;
  response.found = true;
  response.speedup = 1.75;
  response.config_key = "KMP_LIBRARY=turnaround OMP_PLACES=cores";
  response.variable_priority = {"KMP_LIBRARY", "OMP_PLACES", "OMP_PROC_BIND"};
  std::string bytes;
  serve::encode_response(bytes, response);
  ASSERT_EQ(serve::frame_size(bytes), bytes.size());
  const serve::Response decoded =
      serve::decode_response(std::string_view(bytes).substr(4));
  EXPECT_EQ(decoded.type, response.type);
  EXPECT_EQ(decoded.generation, response.generation);
  EXPECT_TRUE(decoded.found);
  EXPECT_DOUBLE_EQ(decoded.speedup, response.speedup);
  EXPECT_EQ(decoded.config_key, response.config_key);
  EXPECT_EQ(decoded.variable_priority, response.variable_priority);

  serve::Response stats;
  stats.type = serve::MsgType::StatsReply;
  stats.generation = 3;
  stats.served = 12345;
  stats.batches = 99;
  stats.cache_hits = 1000;
  stats.cache_misses = 11;
  stats.shed = 4;
  stats.swaps = 2;
  stats.connections_accepted = 17;
  stats.connections_active = 5;
  stats.store_rows = 4242;
  stats.shards = 3;
  bytes.clear();
  serve::encode_response(bytes, stats);
  const serve::Response back =
      serve::decode_response(std::string_view(bytes).substr(4));
  EXPECT_EQ(back.served, stats.served);
  EXPECT_EQ(back.batches, stats.batches);
  EXPECT_EQ(back.cache_hits, stats.cache_hits);
  EXPECT_EQ(back.shed, stats.shed);
  EXPECT_EQ(back.connections_accepted, stats.connections_accepted);
  EXPECT_EQ(back.store_rows, stats.store_rows);
  EXPECT_EQ(back.shards, stats.shards);
}

TEST(ServeWire, MarginalReplyRoundTrips) {
  serve::Response marginal;
  marginal.type = serve::MsgType::MarginalReply;
  marginal.found = true;
  marginal.samples = 321;
  marginal.mean_speedup = 1.1;
  marginal.median_speedup = 1.05;
  marginal.p95_speedup = 1.9;
  marginal.optimal_share = 0.4;
  std::string bytes;
  serve::encode_response(bytes, marginal);
  const serve::Response back =
      serve::decode_response(std::string_view(bytes).substr(4));
  EXPECT_EQ(back.samples, marginal.samples);
  EXPECT_DOUBLE_EQ(back.median_speedup, marginal.median_speedup);
  EXPECT_DOUBLE_EQ(back.optimal_share, marginal.optimal_share);
}

TEST(ServeWire, FrameSizeHandlesPartialAndOversized) {
  std::string bytes;
  serve::encode_request(bytes, recommend_request("app", "arch"));
  // Any strict prefix is "incomplete", never an error.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(serve::frame_size(std::string_view(bytes).substr(0, cut)), 0u);
  }
  // A declared length beyond the cap is a protocol violation immediately.
  std::string oversized(4, '\0');
  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  std::memcpy(oversized.data(), &huge, 4);
  EXPECT_THROW(serve::frame_size(oversized), serve::WireError);
}

TEST(ServeWire, MalformedPayloadsThrowWireError) {
  EXPECT_THROW(serve::decode_request(""), serve::WireError);
  EXPECT_THROW(serve::decode_request("\xee"), serve::WireError);  // unknown type
  // Recommend with a string length running off the end.
  std::string truncated;
  truncated.push_back(static_cast<char>(serve::MsgType::Recommend));
  truncated.push_back('\x40');
  truncated.push_back('\x00');
  EXPECT_THROW(serve::decode_request(truncated), serve::WireError);
  // Trailing garbage after a well-formed message is rejected too.
  std::string framed;
  serve::encode_request(framed, recommend_request("a", "b"));
  std::string payload(std::string_view(framed).substr(4));
  payload += "junk";
  EXPECT_THROW(serve::decode_request(payload), serve::WireError);
  // A reply type is not a request.
  EXPECT_FALSE(serve::is_request_type(serve::MsgType::RecommendReply));
  EXPECT_TRUE(serve::is_request_type(serve::MsgType::Marginal));
}

// ---- cache -----------------------------------------------------------------

TEST(ReplyCache, LruEvictsOldestAndRefreshesOnHit) {
  serve::ReplyCache cache(2);
  const std::string a = serve::ReplyCache::make_key(1, "a");
  const std::string b = serve::ReplyCache::make_key(1, "b");
  const std::string c = serve::ReplyCache::make_key(1, "c");
  cache.insert(a, "reply-a");
  cache.insert(b, "reply-b");
  std::string out;
  ASSERT_TRUE(cache.lookup(a, out));  // refresh a: b is now the LRU entry
  EXPECT_EQ(out, "reply-a");
  cache.insert(c, "reply-c");
  out.clear();
  EXPECT_FALSE(cache.lookup(b, out)) << "b should have been evicted";
  EXPECT_TRUE(cache.lookup(a, out));
  EXPECT_TRUE(cache.lookup(c, out));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ReplyCache, HitAppendsWithoutClobbering) {
  serve::ReplyCache cache(4);
  const std::string key = serve::ReplyCache::make_key(1, "x");
  cache.insert(key, "frame");
  std::string out = "prefix-";
  ASSERT_TRUE(cache.lookup(key, out));
  EXPECT_EQ(out, "prefix-frame");
}

TEST(ReplyCache, GenerationKeysAreDistinctAndPurgeable) {
  serve::ReplyCache cache(8);
  const std::string gen1 = serve::ReplyCache::make_key(1, "same-request");
  const std::string gen2 = serve::ReplyCache::make_key(2, "same-request");
  ASSERT_NE(gen1, gen2) << "generation must be part of the key";
  cache.insert(gen1, "old");
  cache.insert(gen2, "new");
  cache.purge_below(2);
  std::string out;
  EXPECT_FALSE(cache.lookup(gen1, out));
  ASSERT_TRUE(cache.lookup(gen2, out));
  EXPECT_EQ(out, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplyCache, ZeroCapacityDisables) {
  serve::ReplyCache cache(0);
  const std::string key = serve::ReplyCache::make_key(1, "x");
  cache.insert(key, "frame");
  std::string out;
  EXPECT_FALSE(cache.lookup(key, out));
  EXPECT_EQ(cache.size(), 0u);
}

// ---- snapshot --------------------------------------------------------------

TEST(Snapshot, AnswersMatchOfflineAnalysis) {
  const std::string dir = temp_dir("snapshot");
  const StoreFixture store(dir, "a.omps", 5);
  const auto snapshot = serve::Snapshot::load({store.path}, 1);
  ASSERT_EQ(snapshot->generation(), 1u);
  EXPECT_EQ(snapshot->shard_count(), 1u);
  EXPECT_EQ(snapshot->rows(), store.dataset.size());

  // Best config per (app, arch) equals the knowledge base's answer.
  const sweep::Dataset ok = store.dataset.ok_samples();  // KB borrows it
  const core::KnowledgeBase kb(ok, 1.01);
  const serve::BestConfig* best =
      snapshot->best_for_pair(store.app, store.arch);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->config_key,
            kb.best_known_config(store.app, store.arch).key());
  EXPECT_DOUBLE_EQ(best->speedup,
                   kb.best_known_speedup(store.app, store.arch));

  // Variable priority equals the knowledge base ladder, including the
  // fallback for a pair the study never ran.
  const auto* priority = snapshot->priority(store.app, store.arch);
  ASSERT_NE(priority, nullptr);
  EXPECT_EQ(*priority, kb.variable_priority(store.app, store.arch));
  const auto* fallback = snapshot->priority("no-such-app", store.arch);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(*fallback, kb.variable_priority("no-such-app", store.arch));

  // Marginals equal value_marginals, pooled and per-arch.
  const auto pooled = analysis::value_marginals(store.dataset.ok_samples(), false);
  ASSERT_FALSE(pooled.empty());
  const analysis::MarginalRow& row = pooled.front();
  const analysis::MarginalRow* got =
      snapshot->marginal("all", row.variable, row.value);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->samples, row.samples);
  EXPECT_DOUBLE_EQ(got->median_speedup, row.median_speedup);
  EXPECT_EQ(snapshot->marginal("no-such-arch", row.variable, row.value),
            nullptr);

  // An unknown pair has no best config but still gets a priority ladder.
  EXPECT_EQ(snapshot->best_for_pair("no-such-app", store.arch), nullptr);
}

TEST(Snapshot, MultiShardMergesAndLabelsOpenFailures) {
  const std::string dir = temp_dir("snapshot_multi");
  const StoreFixture a(dir, "a.omps", 5);
  const StoreFixture b(dir, "b.omps", 9);
  const auto snapshot = serve::Snapshot::load({a.path, b.path}, 3);
  EXPECT_EQ(snapshot->shard_count(), 2u);
  EXPECT_EQ(snapshot->rows(), a.dataset.size() + b.dataset.size());
  EXPECT_NE(snapshot->best_for_pair(a.app, a.arch), nullptr);

  // A missing shard fails the whole load with the path and the generation
  // it was meant to become (satellite: typed open errors).
  const std::string missing = util::path_join(dir, "gone.omps");
  try {
    serve::Snapshot::load({a.path, missing}, 4);
    FAIL() << "expected StoreOpenError";
  } catch (const util::StoreOpenError& error) {
    EXPECT_EQ(error.path(), missing);
    EXPECT_EQ(error.generation(), 4u);
    EXPECT_NE(std::string(error.what()).find("generation 4"),
              std::string::npos);
  }
}

// ---- server ----------------------------------------------------------------

serve::ServerOptions test_options(const std::string& dir) {
  serve::ServerOptions options;
  options.socket_path = util::path_join(dir, "s.sock");
  options.handle_signals = false;  // the guard is process-global
  return options;
}

TEST(Server, BatchedQueriesStatsAndCacheHits) {
  const std::string dir = temp_dir("server_basic");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));

  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));
  // One pipelined batch mixing every query type plus a stats probe.
  serve::Request best;
  best.type = serve::MsgType::BestSetting;
  const sweep::Sample& sample = store.dataset.samples().front();
  best.arch = sample.arch;
  best.app = sample.app;
  best.input = sample.input;
  best.threads = sample.threads;
  serve::Request marginal;
  marginal.type = serve::MsgType::Marginal;
  marginal.arch = "all";
  {
    const auto rows = analysis::value_marginals(store.dataset.ok_samples(), false);
    marginal.variable = rows.front().variable;
    marginal.value = rows.front().value;
  }
  serve::Request stats;
  stats.type = serve::MsgType::Stats;

  const std::vector<serve::Response> replies = client.call(
      {recommend_request(store.app, store.arch), best, marginal, stats});
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].type, serve::MsgType::RecommendReply);
  ASSERT_TRUE(replies[0].found);
  EXPECT_GT(replies[0].speedup, 0.0);
  EXPECT_FALSE(replies[0].config_key.empty());
  EXPECT_FALSE(replies[0].variable_priority.empty());
  EXPECT_EQ(replies[0].generation, 1u);
  EXPECT_EQ(replies[1].type, serve::MsgType::BestSettingReply);
  EXPECT_TRUE(replies[1].found);
  EXPECT_EQ(replies[2].type, serve::MsgType::MarginalReply);
  EXPECT_TRUE(replies[2].found);
  EXPECT_GT(replies[2].samples, 0u);
  EXPECT_EQ(replies[3].type, serve::MsgType::StatsReply);
  EXPECT_EQ(replies[3].generation, 1u);
  EXPECT_GT(replies[3].store_rows, 0u);

  // The same recommendation again is a cache hit with an identical answer.
  const serve::Response again =
      client.call_one(recommend_request(store.app, store.arch));
  EXPECT_EQ(again.config_key, replies[0].config_key);
  ts.stop_and_join();

  const serve::ServerCounters counters = ts.server.counters();
  EXPECT_EQ(counters.served, 5u);
  EXPECT_GE(counters.batches, 2u);
  EXPECT_GE(counters.cache_hits, 1u);
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.connections_closed, 1u);
  EXPECT_EQ(counters.connections_active, 0u);
  EXPECT_TRUE(counters.drained_cleanly);
}

TEST(Server, UnknownPairAnswersNotFoundNotError) {
  const std::string dir = temp_dir("server_miss");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));
  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));
  const serve::Response reply =
      client.call_one(recommend_request("no-such-app", store.arch));
  EXPECT_EQ(reply.type, serve::MsgType::RecommendReply);
  EXPECT_FALSE(reply.found);
  EXPECT_FALSE(reply.variable_priority.empty())
      << "the priority ladder still answers for unknown apps";
  ts.stop_and_join();
}

TEST(Server, ShedsLoadBeyondAdmissionBound) {
  const std::string dir = temp_dir("server_shed");
  const StoreFixture store(dir, "a.omps", 5);
  serve::ServerOptions options = test_options(dir);
  options.max_pending = 4;  // tiny bounded queue
  options.cache_capacity = 0;
  TestServer ts({store.path}, options);
  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));

  // One pipelined burst far over the bound. Every request gets exactly one
  // reply, in order; the overflow is typed Overloaded, not a stall.
  const std::size_t burst = 64;
  const std::vector<serve::Request> requests(
      burst, recommend_request(store.app, store.arch));
  const std::vector<serve::Response> replies = client.call(requests);
  ASSERT_EQ(replies.size(), burst);
  std::size_t answered = 0, shed = 0;
  for (const serve::Response& reply : replies) {
    if (reply.type == serve::MsgType::RecommendReply) ++answered;
    if (reply.type == serve::MsgType::Overloaded) ++shed;
  }
  EXPECT_EQ(answered + shed, burst);
  EXPECT_GE(answered, options.max_pending)
      << "admitted requests must still be answered";
  EXPECT_GT(shed, 0u) << "the burst must overflow a queue of 4";
  ts.stop_and_join();
  EXPECT_EQ(ts.server.counters().shed, shed);
}

TEST(Server, MalformedRequestGetsErrorReplyAndConnectionSurvives) {
  const std::string dir = temp_dir("server_badreq");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));

  // Raw socket: a well-framed but undecodable payload (unknown type 0xEE).
  const std::string socket_path = util::path_join(dir, "s.sock");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char bad_frame[5] = {1, 0, 0, 0, '\xee'};
  ASSERT_TRUE(util::write_all(fd, std::string_view(bad_frame, 5)));
  // Read one complete reply frame.
  std::string buffer;
  while (serve::frame_size(buffer) == 0) {
    char chunk[512];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  const serve::Response reply =
      serve::decode_response(std::string_view(buffer).substr(4));
  EXPECT_EQ(reply.type, serve::MsgType::Error);
  EXPECT_FALSE(reply.message.empty());
  ::close(fd);

  // The server survives and keeps answering well-formed clients.
  serve::Client client = serve::Client::connect_unix(socket_path);
  EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
            serve::MsgType::RecommendReply);
  ts.stop_and_join();
  EXPECT_EQ(ts.server.counters().wire_errors, 1u);
}

TEST(Server, OversizedFrameDropsTheConnection) {
  const std::string dir = temp_dir("server_oversize");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));
  const std::string socket_path = util::path_join(dir, "s.sock");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  char prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_TRUE(util::write_all(fd, std::string_view(prefix, 4)));
  // The server must close on the framing violation: recv sees EOF.
  char chunk[16];
  EXPECT_EQ(::recv(fd, chunk, sizeof(chunk), 0), 0);
  ::close(fd);
  ts.stop_and_join();
  EXPECT_EQ(ts.server.counters().protocol_errors, 1u);
}

TEST(Server, HotSwapMidLoadDropsNothing) {
  const std::string dir = temp_dir("server_swap");
  const StoreFixture a(dir, "a.omps", 5);
  const StoreFixture b(dir, "b.omps", 9);
  TestServer ts({a.path}, test_options(dir));
  const std::string socket_path = util::path_join(dir, "s.sock");

  // A client hammers pipelined batches while the main thread swaps the
  // store under it. The guarantee: every single request is answered with a
  // real reply — no Error, no Overloaded (bound not reached), no drop.
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> stop{false};
  std::set<std::uint64_t> generations_seen;
  std::mutex generations_mutex;
  std::thread load([&] {
    serve::Client client = serve::Client::connect_unix(socket_path);
    const std::vector<serve::Request> batch(8, recommend_request(a.app, a.arch));
    while (!stop.load()) {
      sent += batch.size();
      const std::vector<serve::Response> replies = client.call(batch);
      for (const serve::Response& reply : replies) {
        ASSERT_EQ(reply.type, serve::MsgType::RecommendReply);
        ASSERT_TRUE(reply.found);
        ++answered;
        std::lock_guard<std::mutex> lock(generations_mutex);
        generations_seen.insert(reply.generation);
      }
    }
  });

  // Let the load establish itself, then swap back and forth.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ts.server.swap({b.path}), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ts.server.swap({a.path, b.path}), 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  load.join();
  ts.stop_and_join();

  EXPECT_EQ(answered.load(), sent.load())
      << "a hot-swap must not drop in-flight queries";
  EXPECT_GE(generations_seen.size(), 2u)
      << "the load must have observed the swap happening under it";
  const serve::ServerCounters counters = ts.server.counters();
  EXPECT_EQ(counters.swaps, 2u);
  EXPECT_EQ(counters.generation, 3u);
  EXPECT_EQ(counters.served, answered.load());
  EXPECT_EQ(counters.shed, 0u);
}

TEST(Server, WireSwapFailureKeepsOldGeneration) {
  const std::string dir = temp_dir("server_swapfail");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));
  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));

  serve::Request swap;
  swap.type = serve::MsgType::Swap;
  swap.store_paths = {util::path_join(dir, "missing.omps")};
  const serve::Response reply = client.call_one(swap);
  EXPECT_EQ(reply.type, serve::MsgType::SwapReply);
  EXPECT_FALSE(reply.found);
  EXPECT_NE(reply.message.find("missing.omps"), std::string::npos);
  EXPECT_EQ(reply.generation, 1u) << "the old generation keeps serving";

  // Still serving generation 1 answers.
  const serve::Response after =
      client.call_one(recommend_request(store.app, store.arch));
  EXPECT_EQ(after.type, serve::MsgType::RecommendReply);
  EXPECT_EQ(after.generation, 1u);
  ts.stop_and_join();
  const serve::ServerCounters counters = ts.server.counters();
  EXPECT_EQ(counters.swaps, 0u);
  EXPECT_EQ(counters.swap_failures, 1u);
}

TEST(Server, WireShutdownDrainsCleanly) {
  const std::string dir = temp_dir("server_shutdown");
  const StoreFixture store(dir, "a.omps", 5);
  TestServer ts({store.path}, test_options(dir));
  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));
  // Queries pipelined ahead of the shutdown must still be answered.
  serve::Request shutdown;
  shutdown.type = serve::MsgType::Shutdown;
  const std::vector<serve::Response> replies = client.call(
      {recommend_request(store.app, store.arch), shutdown});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, serve::MsgType::RecommendReply);
  EXPECT_EQ(replies[1].type, serve::MsgType::ShutdownReply);
  if (ts.thread.joinable()) ts.thread.join();  // run() exits on its own
  EXPECT_TRUE(ts.server.counters().drained_cleanly);
}

TEST(Server, AdminMessagesCanBeDisabled) {
  const std::string dir = temp_dir("server_noadmin");
  const StoreFixture store(dir, "a.omps", 5);
  serve::ServerOptions options = test_options(dir);
  options.allow_admin = false;
  TestServer ts({store.path}, options);
  serve::Client client =
      serve::Client::connect_unix(util::path_join(dir, "s.sock"));
  serve::Request shutdown;
  shutdown.type = serve::MsgType::Shutdown;
  EXPECT_EQ(client.call_one(shutdown).type, serve::MsgType::Error);
  // Queries still work; the server did not drain.
  EXPECT_EQ(client.call_one(recommend_request(store.app, store.arch)).type,
            serve::MsgType::RecommendReply);
  ts.stop_and_join();
}

TEST(Server, TcpListenerServesTheSameProtocol) {
  const std::string dir = temp_dir("server_tcp");
  const StoreFixture store(dir, "a.omps", 5);
  serve::ServerOptions options = test_options(dir);
  options.tcp_port = 0;  // ephemeral
  TestServer ts({store.path}, options);
  ASSERT_GT(ts.server.tcp_port(), 0);
  serve::Client client = serve::Client::connect_tcp(ts.server.tcp_port());
  const serve::Response reply =
      client.call_one(recommend_request(store.app, store.arch));
  EXPECT_EQ(reply.type, serve::MsgType::RecommendReply);
  EXPECT_TRUE(reply.found);
  ts.stop_and_join();
}

}  // namespace
}  // namespace omptune
