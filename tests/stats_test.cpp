// Statistics library tests: descriptive stats against hand-computed values,
// the Wilcoxon signed-rank test against independently computed references
// (classic paired-data example + shift/no-shift cases), and KDE properties.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/wilcoxon.hpp"
#include "util/rng.hpp"

namespace omptune::stats {
namespace {

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Descriptive, WelfordMatchesTwoPassReference) {
  // mean_stddev is single-pass (Welford); it must agree with the naive
  // two-pass computation to 1e-12 even on ill-conditioned data (large
  // offset, tiny variance) where a sum-of-squares one-pass formula loses
  // every significant digit.
  util::Xoshiro256 rng(11);
  for (const double offset : {0.0, 1e9}) {
    std::vector<double> v(10000);
    for (double& x : v) x = offset + rng.uniform(0.999, 1.001);

    double two_pass_mean = 0;
    for (const double x : v) two_pass_mean += x;
    two_pass_mean /= static_cast<double>(v.size());
    double ss = 0;
    for (const double x : v) ss += (x - two_pass_mean) * (x - two_pass_mean);
    const double two_pass_stddev =
        std::sqrt(ss / static_cast<double>(v.size() - 1));

    const MeanStd got = mean_stddev(v.data(), v.size());
    EXPECT_NEAR(got.mean, two_pass_mean, 1e-12 * (1.0 + std::abs(offset)));
    // At offset 1e9 the two-pass reference itself loses digits to
    // cancellation in (x - mean); allow it that floor (~eps * offset).
    EXPECT_NEAR(got.stddev, two_pass_stddev,
                1e-12 + 1e-15 * std::abs(offset));
    EXPECT_DOUBLE_EQ(mean(v), got.mean);
    EXPECT_DOUBLE_EQ(stddev(v), got.stddev);
  }
  const MeanStd single = mean_stddev(std::vector<double>{3.0}.data(), 1);
  EXPECT_DOUBLE_EQ(single.mean, 3.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
}

TEST(Descriptive, QuantilesInterpolate) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Descriptive, SummaryAgreesWithPieces) {
  std::vector<double> v(101);
  std::iota(v.begin(), v.end(), 0.0);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.mean, 50.0);
  EXPECT_DOUBLE_EQ(s.median, 50.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.q25, 25.0);
  EXPECT_DOUBLE_EQ(s.q75, 75.0);
}

TEST(Wilcoxon, ClassicPairedExample) {
  // Hand-verified reference: W+ = 72, W- = 6, statistic = 6,
  // two-sided normal-approximation p = 0.00963.
  const std::vector<double> x = {1.83, 0.50, 1.62, 2.48, 1.68, 1.88,
                                 1.55, 3.06, 1.30, 2.01, 1.12, 1.45};
  const std::vector<double> y = {0.878, 0.647, 0.598, 2.05, 1.06, 1.29,
                                 1.06,  3.14,  1.29,  1.80, 1.00, 1.25};
  const WilcoxonResult r = wilcoxon_signed_rank(x, y);
  EXPECT_DOUBLE_EQ(r.w_plus, 72.0);
  EXPECT_DOUBLE_EQ(r.w_minus, 6.0);
  EXPECT_DOUBLE_EQ(r.statistic, 6.0);
  EXPECT_NEAR(r.p_value, 0.0096329757, 1e-9);
  EXPECT_EQ(r.n_used, 12u);
}

TEST(Wilcoxon, DetectsSystematicShift) {
  // A constant shift between pairs must give a vanishing p-value — this is
  // what flags the X86 repetition drift in the paper's Table III.
  util::Xoshiro256 rng(5);
  std::vector<double> a(60), b(60);
  for (int i = 0; i < 60; ++i) {
    a[static_cast<std::size_t>(i)] = rng.normal(10.0, 1.0);
    b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + 0.3;
  }
  const WilcoxonResult r = wilcoxon_signed_rank(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(Wilcoxon, ConsistentPairsGiveHighPValue) {
  // Tiny symmetric noise: no significant difference (the A64FX behaviour).
  util::Xoshiro256 rng(7);
  std::vector<double> a(200), b(200);
  for (int i = 0; i < 200; ++i) {
    a[static_cast<std::size_t>(i)] = rng.normal(10.0, 1.0);
    b[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] + rng.normal(0.0, 0.01);
  }
  const WilcoxonResult r = wilcoxon_signed_rank(a, b);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(Wilcoxon, HandlesTiedMagnitudes) {
  // Differences with many tied |d| exercise the tie-average ranks and the
  // variance correction.
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(static_cast<double>(i) + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const WilcoxonResult r = wilcoxon_signed_rank(x, y);
  EXPECT_EQ(r.n_used, 20u);
  // Perfectly alternating signs with equal magnitudes: W+ == W-.
  EXPECT_DOUBLE_EQ(r.w_plus, r.w_minus);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(Wilcoxon, RejectsBadInput) {
  EXPECT_THROW(wilcoxon_signed_rank({1, 2}, {1}), std::invalid_argument);
  // All-equal pairs leave zero usable differences.
  const std::vector<double> same(20, 3.0);
  EXPECT_THROW(wilcoxon_signed_rank(same, same), std::invalid_argument);
}

TEST(Kde, DensityIntegratesToOne) {
  util::Xoshiro256 rng(11);
  std::vector<double> values(500);
  for (double& v : values) v = rng.normal(5.0, 2.0);
  const ViolinData violin = kernel_density(values, 256);
  double integral = 0.0;
  for (std::size_t i = 1; i < violin.grid.size(); ++i) {
    const double dx = violin.grid[i] - violin.grid[i - 1];
    integral += 0.5 * (violin.density[i] + violin.density[i - 1]) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Kde, PeaksNearTheMode) {
  util::Xoshiro256 rng(13);
  std::vector<double> values(2000);
  for (double& v : values) v = rng.normal(0.0, 1.0);
  const ViolinData violin = kernel_density(values, 512);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < violin.density.size(); ++i) {
    if (violin.density[i] > violin.density[peak]) peak = i;
  }
  EXPECT_NEAR(violin.grid[peak], 0.0, 0.3);
}

TEST(Kde, BimodalDistributionShowsTwoBumps) {
  // The paper's violins are strongly multi-modal; the KDE must preserve it.
  util::Xoshiro256 rng(17);
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) values.push_back(rng.normal(0.0, 0.3));
  for (int i = 0; i < 800; ++i) values.push_back(rng.normal(5.0, 0.3));
  const ViolinData violin = kernel_density(values, 512);
  // Density at the midpoint valley far below the mode density.
  double valley = 1e9, mode = 0.0;
  for (std::size_t i = 0; i < violin.grid.size(); ++i) {
    if (std::abs(violin.grid[i] - 2.5) < 0.3) valley = std::min(valley, violin.density[i]);
    mode = std::max(mode, violin.density[i]);
  }
  EXPECT_LT(valley, 0.1 * mode);
}

TEST(Kde, RejectsDegenerateInput) {
  EXPECT_THROW(kernel_density({1.0}, 64), std::invalid_argument);
  EXPECT_THROW(kernel_density({1.0, 2.0}, 1), std::invalid_argument);
}

TEST(Histogram, CountsFallIntoBins) {
  const std::vector<double> values = {0.1, 0.2, 0.55, 0.9, 0.95, 2.0};
  const auto counts = histogram(values, 0.0, 1.0, 2);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);  // 0.1, 0.2
  EXPECT_EQ(counts[1], 3);  // 0.55, 0.9, 0.95; 2.0 out of range
  EXPECT_THROW(histogram(values, 1.0, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(histogram(values, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(Violin, AsciiRenderingShowsDistribution) {
  std::vector<double> values;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 400; ++i) values.push_back(rng.normal(1.0, 0.05));
  const std::string art = render_ascii_violin(values, 10, 40);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(art.begin(), art.end(), '\n')), 10);
}

}  // namespace
}  // namespace omptune::stats
