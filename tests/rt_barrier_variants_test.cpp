// Conformance suite for the barrier catalogue: every variant must be a
// correct reusable team barrier for any team size, wait policy, and across
// epoch wraparound — and switching variants must never change application
// results (it is a pure performance knob).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/barrier.hpp"
#include "rt/dissemination_barrier.hpp"
#include "rt/hybrid_barrier.hpp"
#include "rt/team_barrier.hpp"
#include "rt/thread_team.hpp"
#include "rt/tree_barrier.hpp"

namespace omptune::rt {
namespace {

WaitBehavior behavior(WaitPolicy policy) {
  WaitBehavior wait;
  wait.policy = policy;
  wait.yield_while_spinning = true;
  return wait;
}

const BarrierKind kAllKinds[] = {BarrierKind::Central, BarrierKind::Tree,
                                 BarrierKind::Dissemination,
                                 BarrierKind::Hybrid};

/// Drive `rounds` episodes with `team` threads and assert the fundamental
/// barrier property: when any thread leaves episode r, every thread has
/// arrived at episode r (the per-round counter reads team).
void exercise(TeamBarrier& barrier, int team, int rounds) {
  std::vector<std::atomic<int>> arrivals(static_cast<std::size_t>(rounds));
  for (auto& a : arrivals) a.store(0);
  std::atomic<int> violations{0};

  std::vector<std::jthread> threads;
  threads.reserve(static_cast<std::size_t>(team));
  for (int t = 0; t < team; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        arrivals[static_cast<std::size_t>(r)].fetch_add(
            1, std::memory_order_acq_rel);
        barrier.arrive_and_wait(t);
        if (arrivals[static_cast<std::size_t>(r)].load(
                std::memory_order_acquire) != team) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait(t);  // keep rounds phase-separated
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(violations.load(), 0);
}

std::unique_ptr<TeamBarrier> make_with_epoch(BarrierKind kind, int team,
                                             WaitBehavior wait,
                                             std::uint32_t initial_epoch) {
  switch (kind) {
    case BarrierKind::Central:
      return std::make_unique<Barrier>(team, wait, initial_epoch);
    case BarrierKind::Tree:
      return std::make_unique<TreeBarrier>(team, wait, /*padded=*/true,
                                           initial_epoch);
    case BarrierKind::Dissemination:
      return std::make_unique<DisseminationBarrier>(team, wait, initial_epoch);
    case BarrierKind::Hybrid:
      return std::make_unique<HybridBarrier>(team, wait, initial_epoch);
    case BarrierKind::Auto:
      break;
  }
  throw std::logic_error("bad kind");
}

TEST(BarrierVariants, OddAndSmallTeamSizes) {
  for (const BarrierKind kind : kAllKinds) {
    for (const int team : {1, 2, 3, 5, 7}) {
      SCOPED_TRACE(to_string(kind) + " team=" + std::to_string(team));
      auto barrier =
          make_team_barrier(kind, team, behavior(WaitPolicy::Passive));
      EXPECT_EQ(barrier->kind(), kind);
      EXPECT_EQ(barrier->team_size(), team);
      exercise(*barrier, team, 25);
    }
  }
}

TEST(BarrierVariants, ReuseAcrossManyEpisodes) {
  for (const BarrierKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    auto barrier = make_team_barrier(kind, 4, behavior(WaitPolicy::Passive));
    exercise(*barrier, 4, 200);
  }
}

TEST(BarrierVariants, EpochWraparound) {
  // Episodes cross the 2^32 boundary: start every epoch counter just below
  // UINT32_MAX and run enough rounds (2 barriers each) to wrap.
  const std::uint32_t start = std::numeric_limits<std::uint32_t>::max() - 5;
  for (const BarrierKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    auto barrier = make_with_epoch(kind, 3, behavior(WaitPolicy::Passive),
                                   start);
    exercise(*barrier, 3, 20);
  }
}

TEST(BarrierVariants, AllWaitPolicies) {
  for (const BarrierKind kind : kAllKinds) {
    for (const WaitPolicy policy :
         {WaitPolicy::Active, WaitPolicy::SpinThenSleep, WaitPolicy::Passive}) {
      SCOPED_TRACE(to_string(kind) + " policy=" +
                   std::to_string(static_cast<int>(policy)));
      auto barrier = make_team_barrier(kind, 4, behavior(policy));
      exercise(*barrier, 4, 20);
      if (policy == WaitPolicy::Active) {
        // Active (turnaround / infinite blocktime) must never park.
        EXPECT_EQ(barrier->sleep_count(), 0u);
      }
    }
  }
}

TEST(BarrierVariants, PassiveParksOnSlowArrival) {
  // One deliberately late thread forces the others through the futex path.
  Barrier barrier(2, behavior(WaitPolicy::Passive));
  std::jthread waiter([&barrier] { barrier.arrive_and_wait(0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  barrier.arrive_and_wait(1);
  waiter.join();
  EXPECT_GE(barrier.sleep_count(), 1u);
}

TEST(BarrierVariants, UnpaddedTreeBarrierStillConforms) {
  TreeBarrier barrier(5, behavior(WaitPolicy::Passive), /*padded=*/false);
  exercise(barrier, 5, 50);
}

TEST(BarrierVariants, FactoryResolvesAuto) {
  EXPECT_EQ(resolve_barrier_kind(BarrierKind::Auto, 1), BarrierKind::Central);
  EXPECT_EQ(resolve_barrier_kind(BarrierKind::Auto, 4), BarrierKind::Central);
  EXPECT_EQ(resolve_barrier_kind(BarrierKind::Auto, 8), BarrierKind::Hybrid);
  EXPECT_EQ(resolve_barrier_kind(BarrierKind::Auto, 16),
            BarrierKind::Dissemination);
  EXPECT_EQ(resolve_barrier_kind(BarrierKind::Tree, 64), BarrierKind::Tree);
  EXPECT_EQ(make_team_barrier(BarrierKind::Auto, 16)->kind(),
            BarrierKind::Dissemination);
}

TEST(BarrierVariants, RejectsBadTeamAndRank) {
  EXPECT_THROW(make_team_barrier(BarrierKind::Dissemination, 0),
               std::invalid_argument);
  EXPECT_THROW(make_team_barrier(BarrierKind::Hybrid, -3),
               std::invalid_argument);
  for (const BarrierKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    auto barrier = make_team_barrier(kind, 2);
    if (kind == BarrierKind::Central) continue;  // rank-free algorithm
    EXPECT_THROW(barrier->arrive_and_wait(2), std::out_of_range);
    EXPECT_THROW(barrier->arrive_and_wait(-1), std::out_of_range);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the variant is a pure performance knob — forcing any pattern
// through KMP_BARRIER_PATTERN must leave application results untouched.
// ---------------------------------------------------------------------------

double run_team_workload(BarrierKind kind) {
  const auto& cpu = arch::architecture(arch::ArchId::Skylake);
  RtConfig config = RtConfig::defaults_for(cpu);
  config.num_threads = 5;
  config.blocktime_ms = 0;  // kind to the single-core test host
  config.barrier = kind;

  ThreadTeam team(cpu, config);
  EXPECT_EQ(team.barrier_kind(), resolve_barrier_kind(kind, 5));

  double reduced = 0.0;
  std::atomic<std::uint64_t> tasks_done{0};
  team.parallel([&](TeamContext& ctx) {
    const double sum = ctx.parallel_for_reduce(
        0, 10'000, ReduceOp::Sum, [](std::int64_t lo, std::int64_t hi) {
          double acc = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) {
            acc += static_cast<double>(i % 97) * 0.5;
          }
          return acc;
        });
    ctx.single([&reduced, sum] { reduced = sum; });
    ctx.run_task_root([&ctx, &tasks_done] {
      for (int i = 0; i < 64; ++i) {
        ctx.spawn([&tasks_done] {
          tasks_done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  });
  EXPECT_EQ(tasks_done.load(), 64u);
  return reduced;
}

TEST(BarrierVariants, VariantsNeverChangeApplicationResults) {
  const double reference = run_team_workload(BarrierKind::Central);
  for (const BarrierKind kind :
       {BarrierKind::Tree, BarrierKind::Dissemination, BarrierKind::Hybrid,
        BarrierKind::Auto}) {
    SCOPED_TRACE(to_string(kind));
    // Bitwise equality: the reduction order is fixed by the tree algorithm,
    // not by the barrier, so results must match exactly.
    EXPECT_EQ(run_team_workload(kind), reference);
  }
}

}  // namespace
}  // namespace omptune::rt
