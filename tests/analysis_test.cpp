// Analysis pipeline tests on a reduced (but full-roster) model-mode study:
// grouping, influence maps, speedup ranges, recommendations, worst trends.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "analysis/influence.hpp"
#include "analysis/export.hpp"
#include "util/strings.hpp"
#include "analysis/marginals.hpp"
#include "analysis/model_comparison.hpp"
#include "analysis/recommend.hpp"
#include "analysis/speedup.hpp"
#include "sim/executor.hpp"
#include "sweep/harness.hpp"

namespace omptune::analysis {
namespace {

/// Reduced study: the paper's settings roster with ~200 configurations per
/// setting. Built once per process.
const sweep::Dataset& study_dataset() {
  static const sweep::Dataset dataset = [] {
    sim::ModelRunner runner;
    sweep::SweepHarness harness(runner, /*repetitions=*/3);
    sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = 200;
    }
    return harness.run_study(plan);
  }();
  return dataset;
}

TEST(BestPerSetting, OneEntryPerSettingWithBestAtLeastDefault) {
  const auto bests = best_per_setting(study_dataset());
  // A64FX 49 + Milan 43 + Skylake 40 settings.
  EXPECT_EQ(bests.size(), 132u);
  for (const SettingBest& b : bests) {
    EXPECT_GE(b.best_speedup, 1.0) << b.arch << "/" << b.app;
  }
}

TEST(SpeedupRanges, TableFiveShape) {
  const auto ranges = speedup_ranges_by_arch(study_dataset());
  auto find = [&ranges](const std::string& app, const std::string& arch) {
    const auto it = std::find_if(ranges.begin(), ranges.end(),
                                 [&](const ArchAppRange& r) {
                                   return r.app == app && r.arch == arch;
                                 });
    EXPECT_NE(it, ranges.end()) << app << "/" << arch;
    return *it;
  };
  // Table V: XSBench improves only marginally on A64FX and Skylake but
  // strongly on Milan.
  EXPECT_LT(find("xsbench", "a64fx").hi, 1.15);
  EXPECT_LT(find("xsbench", "skylake").hi, 1.15);
  EXPECT_GT(find("xsbench", "milan").hi, 1.8);
  // Alignment shows consistent moderate potential everywhere.
  for (const std::string arch : {"a64fx", "milan", "skylake"}) {
    const auto r = find("alignment", arch);
    EXPECT_GT(r.hi, 1.01) << arch;
    EXPECT_LT(r.hi, 1.35) << arch;
  }
  // Ranges are well-formed.
  for (const auto& r : ranges) {
    EXPECT_LE(r.lo, r.hi);
    EXPECT_GE(r.lo, 0.9);
  }
}

TEST(SpeedupRanges, TableSixShape) {
  const auto ranges = speedup_ranges_by_app(study_dataset());
  EXPECT_EQ(ranges.size(), 15u);
  auto find = [&ranges](const std::string& app) {
    const auto it = std::find_if(ranges.begin(), ranges.end(),
                                 [&app](const AppRange& r) { return r.app == app; });
    EXPECT_NE(it, ranges.end()) << app;
    return *it;
  };
  // NQueens tops Table VI; EP, Strassen and LULESH sit at the bottom.
  EXPECT_GT(find("nqueens").hi, 2.0);
  EXPECT_LT(find("ep").hi, 1.15);
  EXPECT_LT(find("strassen").hi, 1.1);
  EXPECT_LT(find("lulesh").hi, 1.2);
  // Every application shows at least some potential (paper V.1).
  for (const auto& r : ranges) EXPECT_GE(r.hi, 1.0);
  // Apps sorted alphabetically, as in Table VI.
  EXPECT_TRUE(std::is_sorted(ranges.begin(), ranges.end(),
                             [](const AppRange& a, const AppRange& b) {
                               return a.app < b.app;
                             }));
}

TEST(Upshot, ArchitectureMediansFollowThePaperOrdering) {
  const auto upshot = upshot_by_arch(study_dataset());
  ASSERT_EQ(upshot.size(), 3u);
  auto find = [&upshot](const std::string& arch) {
    return *std::find_if(upshot.begin(), upshot.end(),
                         [&arch](const ArchUpshot& u) { return u.arch == arch; });
  };
  // Paper V.1: medians 1.02 (A64FX) < 1.065 (Skylake) < 1.15 (Milan);
  // A64FX carries the global maximum (NQueens, 4.85x).
  EXPECT_LT(find("a64fx").median_best, find("skylake").median_best);
  EXPECT_LT(find("skylake").median_best, find("milan").median_best);
  EXPECT_GT(find("a64fx").max_best, find("milan").max_best);
  EXPECT_GT(find("a64fx").max_best, 3.0);
  for (const auto& u : upshot) {
    EXPECT_GE(u.min_best, 0.99);
    EXPECT_LE(u.min_best, u.median_best);
    EXPECT_LE(u.median_best, u.max_best);
  }
}

TEST(Influence, GroupingsProduceExpectedRows) {
  const auto per_app =
      influence_map(study_dataset(), Grouping::PerApplication);
  const auto per_arch =
      influence_map(study_dataset(), Grouping::PerArchitecture);
  EXPECT_EQ(per_arch.rows.size(), 3u);
  EXPECT_LE(per_app.rows.size(), 15u);
  EXPECT_GE(per_app.rows.size(), 12u);
  // Column sets per grouping.
  EXPECT_NE(std::find(per_app.feature_names.begin(), per_app.feature_names.end(),
                      "Architecture"),
            per_app.feature_names.end());
  EXPECT_NE(std::find(per_arch.feature_names.begin(), per_arch.feature_names.end(),
                      "Application"),
            per_arch.feature_names.end());
  for (const auto& row : per_app.rows) {
    double sum = 0;
    for (const double v : row.influence) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << row.group;
    EXPECT_GT(row.model_accuracy, 0.5) << row.group;
  }
}

TEST(Influence, ReductionAndAlignAreLeastInfluentialPerArch) {
  // Fig 3's bottom line: KMP_FORCE_REDUCTION and KMP_ALIGN_ALLOC matter
  // least when grouping by architecture.
  const auto map = influence_map(study_dataset(), Grouping::PerArchitecture);
  for (const auto& row : map.rows) {
    const double reduction = map.at(row.group, "KMP_FORCE_REDUCTION");
    const double align = map.at(row.group, "KMP_ALIGN_ALLOC");
    const double bind = map.at(row.group, "OMP_PROC_BIND");
    const double library = map.at(row.group, "KMP_LIBRARY");
    EXPECT_LT(reduction, bind) << row.group;
    EXPECT_LT(reduction, library) << row.group;
    EXPECT_LT(align, library) << row.group;
  }
}

TEST(Influence, SortAndStrassenShowNoArchitectureReliance) {
  // Paper note under Fig 2: Sort and Strassen ran only on A64FX, so their
  // Architecture column carries no signal.
  const auto map = influence_map(study_dataset(), Grouping::PerApplication);
  for (const std::string app : {"sort", "strassen"}) {
    EXPECT_LT(map.at(app, "Architecture"), 0.01) << app;
  }
}

TEST(Influence, PerArchAppGroupingHasPairRows) {
  const auto map =
      influence_map(study_dataset(), Grouping::PerArchApplication);
  // 40 + 43 app-arch... pairs exist per arch plan; at least the A64FX roster.
  EXPECT_GE(map.rows.size(), 30u);
  for (const auto& row : map.rows) {
    EXPECT_NE(row.group.find('/'), std::string::npos);
  }
}

TEST(Influence, AtThrowsOnUnknownKeys) {
  const auto map = influence_map(study_dataset(), Grouping::PerArchitecture);
  EXPECT_THROW(map.at("milan", "NOT_A_FEATURE"), std::invalid_argument);
  EXPECT_THROW(map.at("power9", "KMP_LIBRARY"), std::invalid_argument);
}

TEST(Recommendations, NqueensTurnaroundOnEveryArchitecture) {
  // Table VII's headline row.
  const auto recs = recommend_for_app(study_dataset(), "nqueens");
  bool found_all_scope = false;
  for (const auto& rec : recs) {
    if (rec.arch == "all" && rec.variable == "KMP_LIBRARY" &&
        rec.value == "turnaround") {
      found_all_scope = true;
      EXPECT_GT(rec.share_in_best, 0.9);
    }
  }
  EXPECT_TRUE(found_all_scope);
}

TEST(Recommendations, EmptyForUnknownApp) {
  EXPECT_TRUE(recommend_for_app(study_dataset(), "doesnotexist").empty());
}

TEST(WorstTrends, MasterBindingDominatesTheWorstDecile) {
  const auto trends = worst_trends(study_dataset());
  ASSERT_FALSE(trends.empty());
  // The top trend is master binding with large thread counts (paper V.4).
  EXPECT_NE(trends.front().condition.find("master"), std::string::npos);
  EXPECT_GT(trends.front().lift, 3.0);
  // Spread binding is under-represented among the worst.
  for (const auto& t : trends) {
    if (t.condition.find("spread") != std::string::npos) {
      EXPECT_LT(t.lift, 0.5);
    }
  }
}

TEST(ModelComparison, NonLinearModelsMatchOrBeatLogistic) {
  // The paper's future-work hypothesis: non-linear models fit this data at
  // least as well as the interpretable linear surrogate.
  ml::ForestOptions forest;
  forest.num_trees = 12;
  const auto rows = compare_models(study_dataset(), 1.01, forest);
  ASSERT_EQ(rows.size(), 3u);  // one per architecture
  for (const auto& row : rows) {
    EXPECT_GT(row.samples, 1000u) << row.group;
    EXPECT_GE(row.tree_accuracy, row.logistic_accuracy - 0.02) << row.group;
    EXPECT_GE(row.forest_accuracy, row.logistic_accuracy - 0.02) << row.group;
    EXPECT_GT(row.forest_oob_accuracy, 0.5) << row.group;
    EXPECT_LE(row.forest_oob_accuracy, row.forest_accuracy + 0.05) << row.group;
  }
}

TEST(Transfer, LeaveOneAppOutCoversTheRoster) {
  ml::ForestOptions forest;
  forest.num_trees = 8;
  const auto results = leave_one_app_out(study_dataset(), 1.01, forest);
  // 15 + 13 + 12 (arch, app) pairs, minus degenerate training slices.
  EXPECT_GE(results.size(), 35u);
  for (const auto& r : results) {
    EXPECT_GT(r.test_samples, 0u);
    EXPECT_GE(r.forest_accuracy, 0.0);
    EXPECT_LE(r.forest_accuracy, 1.0);
    EXPECT_GE(r.majority_baseline, 0.5);
  }
}

TEST(Transfer, SomePairsTransferSomeDoNot) {
  // The paper: "there is no guarantee this knowledge can be transferred to
  // new unseen applications" — transfer beats the majority baseline for
  // some held-out apps but not all.
  ml::ForestOptions forest;
  forest.num_trees = 8;
  const auto results = leave_one_app_out(study_dataset(), 1.01, forest);
  int beats = 0, loses = 0;
  for (const auto& r : results) {
    if (r.forest_accuracy > r.majority_baseline + 0.02) ++beats;
    if (r.forest_accuracy < r.majority_baseline - 0.02) ++loses;
  }
  EXPECT_GT(beats, 0);
  EXPECT_GT(loses, 0);
}

TEST(Marginals, CoverEveryVariableValuePerArch) {
  const auto marginals = value_marginals(study_dataset());
  // Each arch has 7 variables; value counts per variable: places 4,
  // bind 6, schedule 4, library 2, blocktime 3, reduction 4, align (4 or 2).
  std::map<std::string, std::set<std::string>> values_per_variable;
  for (const auto& row : marginals) {
    if (row.arch != "milan") continue;
    values_per_variable[row.variable].insert(row.value);
    EXPECT_GT(row.samples, 0u);
    EXPECT_GT(row.median_speedup, 0.001);  // master binding can be ~0.02x
    EXPECT_GE(row.p95_speedup, row.median_speedup);
    EXPECT_GE(row.optimal_share, 0.0);
    EXPECT_LE(row.optimal_share, 1.0);
  }
  EXPECT_EQ(values_per_variable["OMP_PLACES"].size(), 4u);
  EXPECT_EQ(values_per_variable["OMP_PROC_BIND"].size(), 6u);
  EXPECT_EQ(values_per_variable["KMP_LIBRARY"].size(), 2u);
  EXPECT_EQ(values_per_variable["KMP_ALIGN_ALLOC"].size(), 4u);
}

TEST(Marginals, MasterBindingHasTheWorstMedian) {
  const auto marginals = value_marginals(study_dataset());
  for (const char* arch : {"a64fx", "milan", "skylake"}) {
    double master_median = 0.0, spread_median = 0.0;
    for (const auto& row : marginals) {
      if (row.arch != arch || row.variable != "OMP_PROC_BIND") continue;
      if (row.value == "master") master_median = row.median_speedup;
      if (row.value == "spread") spread_median = row.median_speedup;
    }
    EXPECT_LT(master_median, spread_median) << arch;
    EXPECT_LT(master_median, 0.9) << arch;  // master is catastrophic
  }
}

TEST(Marginals, PooledRowsUseAllScope) {
  const auto pooled = value_marginals(study_dataset(), /*per_arch=*/false);
  for (const auto& row : pooled) EXPECT_EQ(row.arch, "all");
  const auto best = best_value_of(pooled, "all", "KMP_LIBRARY");
  EXPECT_EQ(best.variable, "KMP_LIBRARY");
  EXPECT_THROW(best_value_of(pooled, "milan", "KMP_LIBRARY"),
               std::invalid_argument);
}

TEST(Export, ViolinFigureWritesCsvAndScript) {
  const std::string dir = ::testing::TempDir() + "omptune_export_violin";
  const auto written = export_violin_figure(study_dataset(), "health", dir, 64);
  ASSERT_GE(written.size(), 4u);  // >= 3 groups + the gnuplot script
  EXPECT_NE(written.back().find("_violin.gp"), std::string::npos);

  // CSVs parse back, densities are non-negative, grids ascend.
  const auto table = util::CsvTable::read_file(written.front());
  ASSERT_GT(table.num_rows(), 10u);
  double prev = -1e300;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    const double value = table.cell_as_double(i, "value");
    EXPECT_GT(value, prev);
    prev = value;
    EXPECT_GE(table.cell_as_double(i, "density"), 0.0);
  }
  EXPECT_THROW(export_violin_figure(study_dataset(), "not_an_app", dir),
               std::invalid_argument);
}

TEST(Export, HeatmapFigureRoundTrips) {
  const std::string dir = ::testing::TempDir() + "omptune_export_heat";
  const auto map = influence_map(study_dataset(), Grouping::PerArchitecture);
  const auto written = export_heatmap_figure(map, "fig3", dir);
  ASSERT_EQ(written.size(), 2u);

  const auto table = util::CsvTable::read_file(written.front());
  EXPECT_EQ(table.num_rows(), map.rows.size());
  EXPECT_EQ(table.num_cols(), map.feature_names.size() + 1);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 1; c < table.num_cols(); ++c) {
      sum += util::parse_double(table.row(r)[c]).value();
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);
  }
}

}  // namespace
}  // namespace omptune::analysis
