// Process-isolated supervisor tests. The core guarantees under test:
//
//  1. Equivalence: a supervised study (any worker count) produces the
//     CSV-canonical identical dataset to the single-process harness.
//  2. Containment: workers SIGKILLed, segfaulting, wedged, or writing
//     protocol garbage at deterministic chaos points never lose or
//     duplicate completed samples — the compacted store is byte-identical
//     to an undisturbed run's.
//  3. Evidence: a setting that keeps killing its workers is quarantined
//     with the termination signal recorded, and the study still completes.
//  4. Drain/resume: an interrupted supervised study resumes from its
//     journal to the identical dataset.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "arch/cpu_arch.hpp"
#include "sim/executor.hpp"
#include "store/compact.hpp"
#include "sweep/harness.hpp"
#include "sweep/journal.hpp"
#include "sweep/supervisor.hpp"
#include "sweep/worker.hpp"
#include "util/fs.hpp"

namespace omptune::sweep {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("omptune_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string canonical_csv(const Dataset& dataset) {
  std::ostringstream os;
  dataset.to_csv().write(os);
  return os.str();
}

constexpr int kReps = 2;
constexpr std::uint64_t kSeed = 5;

StudyPlan plan_under_test() { return StudyPlan::mini_plan(2, 6); }

/// The single-process reference: same plan, reps and seed as the
/// supervised runs, so any divergence is the supervisor's fault.
std::string reference_csv(const StudyPlan& plan) {
  sim::ModelRunner runner;
  SweepHarness harness(runner, kReps, kSeed);
  return canonical_csv(harness.run_study(plan));
}

RunnerFactory model_factory() {
  return [] { return std::make_unique<sim::ModelRunner>(); };
}

SupervisorOptions base_options() {
  SupervisorOptions options;
  options.repetitions = kReps;
  options.seed = kSeed;
  options.heartbeat_timeout_ms = 8000;
  return options;
}

// ---- plan flattening --------------------------------------------------------

TEST(FlattenPlan, PreservesRunStudyOrderAndKeys) {
  const StudyPlan plan = plan_under_test();
  const std::vector<SettingTask> tasks = flatten_plan(plan);
  std::size_t expected = 0;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    expected += arch_plan.settings.size();
  }
  ASSERT_EQ(tasks.size(), expected);
  std::size_t i = 0;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    const arch::CpuArch& cpu = arch::architecture(arch_plan.arch);
    for (const StudySetting& setting : arch_plan.settings) {
      EXPECT_EQ(tasks[i].key, setting_key(cpu.name, setting));
      EXPECT_EQ(tasks[i].arch, arch_plan.arch);
      ++i;
    }
  }
}

// ---- equivalence ------------------------------------------------------------

TEST(Supervisor, SingleWorkerMatchesSingleProcess) {
  const StudyPlan plan = plan_under_test();
  SupervisorOptions options = base_options();
  options.workers = 1;
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
  EXPECT_EQ(supervisor.report().settings_completed,
            supervisor.report().settings_total);
  EXPECT_EQ(supervisor.report().worker_crashes, 0u);
  EXPECT_FALSE(supervisor.report().interrupted);
  // A private temp journal is removed after a completed run.
  EXPECT_TRUE(supervisor.report().journal_dir.empty());
}

TEST(Supervisor, WorkerPoolMatchesSingleProcess) {
  const StudyPlan plan = plan_under_test();
  SupervisorOptions options = base_options();
  options.workers = 4;
  StudySupervisor supervisor(model_factory(), options);
  EXPECT_EQ(canonical_csv(supervisor.run(plan)), reference_csv(plan));
  EXPECT_EQ(supervisor.report().settings_completed,
            supervisor.report().settings_total);
}

TEST(Supervisor, EmptyPlanYieldsEmptyDataset) {
  StudySupervisor supervisor(model_factory(), base_options());
  const Dataset dataset = supervisor.run(StudyPlan{});
  EXPECT_EQ(dataset.size(), 0u);
  EXPECT_EQ(supervisor.report().settings_total, 0u);
}

// ---- chaos containment ------------------------------------------------------

TEST(Supervisor, ChaosKillsAreContainedAndDatasetIdentical) {
  const StudyPlan plan = plan_under_test();
  SupervisorOptions options = base_options();
  options.workers = 3;
  options.chaos = sim::ChaosSpec::parse("seed=7,kill=0.02,segv=0.01");
  // Chaos kills are environmental, not the setting's fault: a crash cap
  // large enough that no setting quarantines keeps the dataset complete.
  options.max_setting_crashes = 1000;
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  const SupervisorReport& report = supervisor.report();
  EXPECT_GT(report.worker_crashes, 0u);
  EXPECT_GT(report.respawns, 0u);
  // Every respawn is gated behind deterministic decorrelated-jitter backoff
  // (shared with the coordinator's re-lease policy) — a crashing
  // environment must never hot-loop the fork path.
  EXPECT_GT(report.respawn_waits, 0u);
  EXPECT_GT(report.respawn_backoff_ms, 0);
  EXPECT_TRUE(report.quarantined_settings.empty());
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
}

TEST(Supervisor, ChaosKillCompactedStoreIsByteIdentical) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("sup_compact");
  const std::string ref_dir = util::path_join(scratch.path(), "ref_journal");
  const std::string sup_dir = util::path_join(scratch.path(), "sup_journal");
  const std::string ref_store = util::path_join(scratch.path(), "ref.omps");
  const std::string sup_store = util::path_join(scratch.path(), "sup.omps");

  // Undisturbed single-process journaled run.
  {
    sim::ModelRunner runner;
    SweepHarness harness(runner, kReps, kSeed);
    StudyRunOptions run_options;
    run_options.journal_dir = ref_dir;
    run_options.resilient = true;
    harness.run_study(plan, run_options);
    StudyJournal(ref_dir).compact(ref_store);
  }

  // Supervised run with workers SIGKILLed at deterministic chaos points.
  SupervisorOptions options = base_options();
  options.workers = 4;
  options.journal_dir = sup_dir;
  options.chaos = sim::ChaosSpec::parse("seed=3,kill=0.03");
  options.max_setting_crashes = 1000;
  StudySupervisor supervisor(model_factory(), options);
  supervisor.run(plan);
  ASSERT_GT(supervisor.report().worker_crashes, 0u);
  StudyJournal(sup_dir).compact(sup_store);

  // SIGKILL at any point must never lose or duplicate a completed sample.
  const auto ref_bytes = util::read_file(ref_store);
  const auto sup_bytes = util::read_file(sup_store);
  ASSERT_TRUE(ref_bytes.has_value());
  ASSERT_TRUE(sup_bytes.has_value());
  EXPECT_TRUE(*ref_bytes == *sup_bytes)
      << "compacted stores differ (" << ref_bytes->size() << " vs "
      << sup_bytes->size() << " bytes)";
}

TEST(Supervisor, WedgedWorkerIsDetectedByMissedHeartbeats) {
  const StudyPlan plan = plan_under_test();
  SupervisorOptions options = base_options();
  options.workers = 2;
  options.heartbeat_timeout_ms = 300;
  options.heartbeat_interval_ms = 10;
  options.chaos = sim::ChaosSpec::parse("seed=17,wedge=0.08");
  options.max_setting_crashes = 1000;
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  const SupervisorReport& report = supervisor.report();
  EXPECT_GT(report.hang_kills, 0u);
  EXPECT_EQ(report.settings_completed, report.settings_total);
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
}

TEST(Supervisor, GarblingWorkerIsKilledAndWorkReassigned) {
  const StudyPlan plan = plan_under_test();
  SupervisorOptions options = base_options();
  options.workers = 2;
  // Garbling workers stop progressing after the garbage; a short heartbeat
  // timeout doubles as the backstop should the garbage somehow parse.
  options.heartbeat_timeout_ms = 2000;
  options.chaos = sim::ChaosSpec::parse("seed=29,garble=0.08");
  options.max_setting_crashes = 1000;
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  const SupervisorReport& report = supervisor.report();
  EXPECT_GT(report.protocol_errors, 0u);
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
}

// ---- quarantine with evidence -----------------------------------------------

TEST(Supervisor, PoisonousSettingQuarantinesWithSignalEvidence) {
  const StudyPlan plan = plan_under_test();
  const std::vector<SettingTask> tasks = flatten_plan(plan);
  const std::string poisoned_app = tasks[0].setting.app->name();
  std::size_t poisoned = 0;
  for (const SettingTask& task : tasks) {
    if (task.setting.app->name() == poisoned_app) ++poisoned;
  }

  SupervisorOptions options = base_options();
  options.workers = 2;
  options.chaos.sticky_kill_substr = "/" + poisoned_app + "/";
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  const SupervisorReport& report = supervisor.report();

  // The study completes; every poisoned setting is quarantined with the
  // termination signal on record, everything else collected normally.
  EXPECT_EQ(report.settings_completed, report.settings_total);
  ASSERT_EQ(report.quarantined_settings.size(), poisoned);
  for (const SupervisedQuarantine& q : report.quarantined_settings) {
    EXPECT_EQ(q.crashes, options.max_setting_crashes);
    EXPECT_NE(q.evidence.find("signal 9"), std::string::npos) << q.evidence;
    EXPECT_NE(q.key.find("/" + poisoned_app + "/"), std::string::npos);
  }
  EXPECT_GT(dataset.quarantined_count(), 0u);
  std::size_t quarantined_samples = 0;
  for (const Sample& s : dataset.samples()) {
    if (!s.is_quarantined()) {
      EXPECT_EQ(s.app.find(poisoned_app), std::string::npos);
      continue;
    }
    ++quarantined_samples;
    EXPECT_EQ(s.app, poisoned_app);
    EXPECT_NE(s.error.find("signal 9"), std::string::npos) << s.error;
  }
  EXPECT_EQ(quarantined_samples, dataset.quarantined_count());

  // Shape compatibility: quarantining must not change the dataset size.
  sim::ModelRunner runner;
  SweepHarness harness(runner, kReps, kSeed);
  EXPECT_EQ(dataset.size(), harness.run_study(plan).size());
}

// ---- graceful drain and resume ----------------------------------------------

TEST(Supervisor, RequestStopDrainsAndResumeCompletesIdentically) {
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("sup_resume");
  const std::string journal_dir = util::path_join(scratch.path(), "journal");

  SupervisorOptions options = base_options();
  options.workers = 2;
  options.shard_size = 1;
  options.journal_dir = journal_dir;
  StudySupervisor* target = nullptr;
  options.progress = [&target](const std::string& message) {
    // Stop after the first completed setting, as SIGINT would.
    if (target != nullptr && message.find(" samples ") != std::string::npos) {
      target->request_stop();
    }
  };
  StudySupervisor first(model_factory(), options);
  target = &first;
  const Dataset partial = first.run(plan);
  const SupervisorReport& report = first.report();
  EXPECT_TRUE(report.interrupted);
  EXPECT_LT(report.settings_completed, report.settings_total);
  EXPECT_EQ(partial.size() % 6, 0u);  // whole settings only, 6 configs each
  EXPECT_EQ(report.journal_dir, journal_dir);

  // Resume to completion with a fresh supervisor.
  SupervisorOptions resume_options = base_options();
  resume_options.workers = 2;
  resume_options.journal_dir = journal_dir;
  resume_options.resume = true;
  StudySupervisor second(model_factory(), resume_options);
  const Dataset completed = second.run(plan);
  EXPECT_FALSE(second.report().interrupted);
  EXPECT_EQ(second.report().settings_resumed, report.settings_completed);
  EXPECT_EQ(canonical_csv(completed), reference_csv(plan));
}

TEST(Supervisor, AdoptsEntriesRecordedByWorkersKilledBeforeReporting) {
  // A worker SIGKILLed between journal.record and its `done` report leaves
  // the completed entry in its private directory; a resumed supervisor must
  // adopt it instead of recollecting (or worse, losing) it.
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("sup_salvage");
  const std::string journal_dir = util::path_join(scratch.path(), "journal");
  const std::vector<SettingTask> tasks = flatten_plan(plan);

  {
    sim::ModelRunner runner;
    SweepHarness harness(runner, kReps, kSeed);
    const StudyJournal stranded(
        util::path_join(util::path_join(journal_dir, "workers"), "w0"));
    const arch::CpuArch& cpu = arch::architecture(tasks[0].arch);
    stranded.record(tasks[0].key,
                    harness.run_setting(cpu, tasks[0].setting,
                                        tasks[0].config_count));
  }

  SupervisorOptions options = base_options();
  options.workers = 2;
  options.journal_dir = journal_dir;
  options.resume = true;
  StudySupervisor supervisor(model_factory(), options);
  const Dataset dataset = supervisor.run(plan);
  EXPECT_GE(supervisor.report().settings_resumed, 1u);
  EXPECT_EQ(canonical_csv(dataset), reference_csv(plan));
}

TEST(Supervisor, StaleJournalEntriesAreDiscardedWithoutResume) {
  // Without --resume, an existing journal entry (e.g. from a different
  // seed) must be recollected, not silently merged into the dataset.
  const StudyPlan plan = plan_under_test();
  ScratchDir scratch("sup_stale");
  const std::string journal_dir = util::path_join(scratch.path(), "journal");
  const std::vector<SettingTask> tasks = flatten_plan(plan);
  {
    sim::ModelRunner runner;
    SweepHarness other_seed(runner, kReps, kSeed + 1);
    const arch::CpuArch& cpu = arch::architecture(tasks[0].arch);
    StudyJournal(journal_dir)
        .record(tasks[0].key,
                other_seed.run_setting(cpu, tasks[0].setting,
                                       tasks[0].config_count));
  }
  SupervisorOptions options = base_options();
  options.workers = 2;
  options.journal_dir = journal_dir;
  StudySupervisor supervisor(model_factory(), options);
  EXPECT_EQ(canonical_csv(supervisor.run(plan)), reference_csv(plan));
  EXPECT_EQ(supervisor.report().settings_resumed, 0u);
}

}  // namespace
}  // namespace omptune::sweep
