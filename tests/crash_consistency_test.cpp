// Crash-point enumeration over every durability layer (DESIGN.md §14).
//
// For each torture workload below, the harness first counts the hooked I/O
// operations of an uninterrupted run (N), then — for every enumerated crash
// point k in [1, N], in clean and torn-write modes — forks a child that
// installs sim::StorageChaos{crash_at_op = k} and runs the workload. The
// child dies by genuine SIGKILL at the k-th operation (no destructor, no
// cleanup path), exactly like a power cut. The parent then runs the
// workload's recovery procedure UNHOOKED and asserts the durability
// contract:
//
//   1. recovery never crashes and never throws,
//   2. the recovered directory is byte-identical to the uninterrupted
//      golden run (resume converges),
//   3. no stale "*.tmp.<pid>" files survive recovery,
//   4. workload-specific atomicity invariants hold mid-crash (a published
//      store always loads; a WAL/state file always parses as some
//      checkpoint — never a tear, never a mix).
//
// Error-injection legs run in-process on the same crash points: ENOSPC and
// EIO at the k-th op must surface as a typed util::TuneError (or be
// absorbed by a documented degradation path) — never a crash, never
// silence — and recovery must still converge; injected short writes must
// be completed transparently by the fs write loops.
//
// Budget: OMPTUNE_TORTURE_BUDGET (or --torture-budget=N) bounds the crash
// points sampled per workload/mode; 0 means exhaustive. The default keeps
// local ctest fast; CI's release leg runs exhaustive.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/storage_chaos.hpp"
#include "store/compact.hpp"
#include "store/tiered.hpp"
#include "sweep/dataset.hpp"
#include "sweep/harness.hpp"
#include "sweep/journal.hpp"
#include "sweep/lease.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/io_hooks.hpp"

namespace omptune {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Harness plumbing

std::size_t torture_budget() {
  const char* env = std::getenv("OMPTUNE_TORTURE_BUDGET");
  if (env == nullptr) return 24;  // modest default: local ctest stays fast
  const long value = std::atol(env);
  if (value <= 0) return static_cast<std::size_t>(-1);  // 0 = exhaustive
  return static_cast<std::size_t>(value);
}

/// Evenly sampled crash points in [1, total], always including 1 and
/// `total` (the first and last op are where off-by-one recovery bugs live).
std::vector<std::uint64_t> sampled_points(std::uint64_t total,
                                          std::size_t budget) {
  std::vector<std::uint64_t> points;
  if (total == 0) return points;
  if (total <= budget) {
    for (std::uint64_t k = 1; k <= total; ++k) points.push_back(k);
    return points;
  }
  for (std::size_t i = 0; i < budget; ++i) {
    const std::uint64_t k =
        1 + (i * (total - 1)) / (budget > 1 ? budget - 1 : 1);
    if (points.empty() || points.back() != k) points.push_back(k);
  }
  return points;
}

/// Relative path -> file bytes for every regular file under `dir`.
std::map<std::string, std::string> snapshot(const std::string& dir) {
  std::map<std::string, std::string> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel = fs::relative(entry.path(), dir).string();
    const std::optional<std::string> bytes =
        util::read_file(entry.path().string());
    files[rel] = bytes ? *bytes : "<unreadable>";
  }
  return files;
}

/// Human-readable diff of two snapshots (keys and size mismatches only).
std::string describe_diff(const std::map<std::string, std::string>& golden,
                          const std::map<std::string, std::string>& got) {
  std::string out;
  for (const auto& [path, bytes] : golden) {
    const auto it = got.find(path);
    if (it == got.end()) {
      out += "  missing: " + path + "\n";
    } else if (it->second != bytes) {
      out += "  differs: " + path + " (" + std::to_string(bytes.size()) +
             " vs " + std::to_string(it->second.size()) + " bytes)\n";
    }
  }
  for (const auto& [path, bytes] : got) {
    if (golden.find(path) == golden.end()) {
      out += "  extra: " + path + " (" + std::to_string(bytes.size()) +
             " bytes)\n";
    }
  }
  return out.empty() ? "  (bytes differ)\n" : out;
}

std::vector<std::string> stale_temps(const std::string& dir) {
  std::vector<std::string> temps;
  if (!fs::exists(dir)) return temps;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      temps.push_back(entry.path().string());
    }
  }
  return temps;
}

/// One durability workload. `run` is the hooked phase and must be
/// idempotent over a crashed directory (that is the property under test);
/// `setup` runs unhooked before every execution; `recover` runs unhooked
/// after a crash and throws on any violated atomicity invariant.
struct Workload {
  std::string name;
  std::function<void(const std::string&)> setup;  // may be null
  std::function<void(const std::string&)> run;
  /// Default recovery: assert invariants (none), sweep stale temps at the
  /// top level, then re-run to convergence. Workloads override to add
  /// atomicity checks.
  std::function<void(const std::string&)> recover;
};

std::string workload_dir(const std::string& name) {
  return (fs::temp_directory_path() /
          ("omptune_crash_" + name + "_" + std::to_string(::getpid())))
      .string();
}

void fresh_dir(const Workload& w, const std::string& dir) {
  fs::remove_all(dir);
  util::create_directories(dir);
  if (w.setup) w.setup(dir);
}

void default_recover(const Workload& w, const std::string& dir) {
  util::remove_stale_temp_files(dir);
  w.run(dir);
}

void recover(const Workload& w, const std::string& dir) {
  if (w.recover) {
    w.recover(dir);
  } else {
    default_recover(w, dir);
  }
}

/// Count the hooked ops of one uninterrupted run (fault-free chaos hook).
std::uint64_t count_ops(const Workload& w, const std::string& dir) {
  fresh_dir(w, dir);
  sim::StorageChaos counter{sim::StorageFaultPlan{}};
  util::ScopedIoHooks scope(&counter);
  w.run(dir);
  return counter.ops_seen();
}

/// The full enumeration: golden run, then every sampled crash point in
/// clean and torn modes, then the errno-injection and short-write legs.
void torture(const Workload& w) {
  const std::string dir = workload_dir(w.name);

  const std::uint64_t total = count_ops(w, dir);
  ASSERT_GT(total, 0u) << w.name << ": workload performs no hooked I/O";

  fresh_dir(w, dir);
  w.run(dir);
  const std::map<std::string, std::string> golden = snapshot(dir);
  ASSERT_FALSE(golden.empty()) << w.name << ": golden run left no files";
  ASSERT_TRUE(stale_temps(dir).empty())
      << w.name << ": golden run left temp files";

  const std::vector<std::uint64_t> points =
      sampled_points(total, torture_budget());

  // -- crash legs: SIGKILL at op k, clean and torn ------------------------
  for (const bool torn : {false, true}) {
    for (const std::uint64_t k : points) {
      const std::string context = w.name + " crash_at_op=" +
                                  std::to_string(k) + "/" +
                                  std::to_string(total) +
                                  (torn ? " (torn)" : "");
      fresh_dir(w, dir);
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0) << context << ": fork failed";
      if (pid == 0) {
        // Child: arm the crash and run. Reaching either _Exit is a bug —
        // the k-th op must SIGKILL us first.
        sim::StorageFaultPlan plan;
        plan.crash_at_op = k;
        plan.torn_crash = torn;
        sim::StorageChaos chaos(plan);
        util::install_io_hooks(&chaos);
        try {
          w.run(dir);
        } catch (...) {
          std::_Exit(42);
        }
        std::_Exit(43);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid) << context;
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << context << ": child did not die at the crash point (status "
          << status << "; exit 42 = threw before it, 43 = ran past it)";

      try {
        recover(w, dir);
      } catch (const std::exception& error) {
        FAIL() << context << ": recovery threw: " << error.what();
      }
      const std::map<std::string, std::string> recovered = snapshot(dir);
      ASSERT_EQ(recovered, golden)
          << context << ": recovered state diverges from golden\n"
          << describe_diff(golden, recovered);
      const std::vector<std::string> temps = stale_temps(dir);
      ASSERT_TRUE(temps.empty())
          << context << ": stale temp survived recovery: " << temps.front();
    }
  }

  // -- errno-injection legs: typed failure or documented degradation ------
  struct ErrnoLeg {
    int error_number;
    const char* label;
    std::size_t stride;  // sample every stride-th point
  };
  for (const ErrnoLeg leg : {ErrnoLeg{ENOSPC, "ENOSPC", 1},
                             ErrnoLeg{EIO, "EIO", 3}}) {
    for (std::size_t i = 0; i < points.size(); i += leg.stride) {
      const std::uint64_t k = points[i];
      const std::string context = w.name + " " + leg.label + " at_op=" +
                                  std::to_string(k);
      fresh_dir(w, dir);
      sim::StorageFaultPlan plan;
      plan.fail_at_op = k;
      plan.fail_errno = leg.error_number;
      sim::StorageChaos chaos(plan);
      {
        util::ScopedIoHooks scope(&chaos);
        try {
          w.run(dir);  // completing under degradation is acceptable
        } catch (const util::TuneError&) {
          // Typed failure is the contract; anything else escapes and
          // fails the test.
        }
      }
      try {
        recover(w, dir);
      } catch (const std::exception& error) {
        FAIL() << context << ": recovery threw: " << error.what();
      }
      const std::map<std::string, std::string> recovered = snapshot(dir);
      ASSERT_EQ(recovered, golden)
          << context << ": recovery diverges from golden\n"
          << describe_diff(golden, recovered);
    }
  }

  // -- short-write leg: the fs write loops must finish the job ------------
  for (std::size_t i = 0; i < points.size(); i += 3) {
    const std::uint64_t k = points[i];
    const std::string context =
        w.name + " short_write_at_op=" + std::to_string(k);
    fresh_dir(w, dir);
    sim::StorageFaultPlan plan;
    plan.short_write_at_op = k;
    sim::StorageChaos chaos(plan);
    {
      util::ScopedIoHooks scope(&chaos);
      try {
        w.run(dir);
      } catch (const std::exception& error) {
        FAIL() << context << ": a short write must be transparent, got: "
               << error.what();
      }
    }
    const std::map<std::string, std::string> got = snapshot(dir);
    ASSERT_EQ(got, golden) << context << ": short write changed the output\n"
                           << describe_diff(golden, got);
  }

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Deterministic dataset builders (per-setting seeds derive from setting
// keys, so the same seed always yields the same bytes).

sweep::Dataset small_dataset(std::uint64_t seed) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, seed);
  return harness.run_study(sweep::StudyPlan::mini_plan(1, 2));
}

// ---------------------------------------------------------------------------
// Workload 1: journal append + compact (write-ahead study journal).

Workload journal_workload() {
  Workload w;
  w.name = "journal";
  w.run = [](const std::string& dir) {
    sim::ModelRunner runner;
    sweep::SweepHarness harness(runner, 2, 7);
    sweep::StudyRunOptions options;
    options.journal_dir = util::path_join(dir, "journal");
    options.resume = true;  // a crashed run resumes what the journal holds
    harness.run_study(sweep::StudyPlan::mini_plan(1, 3), options);
    sweep::StudyJournal journal(util::path_join(dir, "journal"));
    journal.compact(util::path_join(dir, "out.omps"));
  };
  w.recover = [w_run = w.run](const std::string& dir) {
    // Atomicity: a published compact output always loads.
    const std::string out = util::path_join(dir, "out.omps");
    if (util::file_exists(out)) sweep::Dataset::load_store(out);
    util::remove_stale_temp_files(dir);
    w_run(dir);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Workload 2: store save (the atomic .omps publish).

Workload store_workload() {
  Workload w;
  w.name = "store";
  w.run = [](const std::string& dir) {
    small_dataset(11).save_store(util::path_join(dir, "data.omps"));
  };
  w.recover = [w_run = w.run](const std::string& dir) {
    // Atomicity: if the target exists at all, it is a complete store.
    const std::string path = util::path_join(dir, "data.omps");
    if (util::file_exists(path)) sweep::Dataset::load_store(path);
    util::remove_stale_temp_files(dir);
    w_run(dir);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Workload 3: tiered compaction (content-named intermediates + atomic
// publish + stale-intermediate GC).

Workload tiered_workload() {
  Workload w;
  w.name = "tiered";
  w.setup = [](const std::string& dir) {
    util::create_directories(util::path_join(dir, "in"));
    for (std::uint64_t i = 0; i < 4; ++i) {
      small_dataset(100 + i).save_store(
          util::path_join(dir, "in/s" + std::to_string(i) + ".omps"));
    }
  };
  w.run = [](const std::string& dir) {
    std::vector<std::string> inputs;
    for (std::uint64_t i = 0; i < 4; ++i) {
      inputs.push_back(
          util::path_join(dir, "in/s" + std::to_string(i) + ".omps"));
    }
    store::TieredOptions options;
    options.fan_in = 2;
    store::tiered_compact(inputs, util::path_join(dir, "merged.omps"),
                          options);
  };
  w.recover = [w_run = w.run](const std::string& dir) {
    const std::string merged = util::path_join(dir, "merged.omps");
    if (util::file_exists(merged)) sweep::Dataset::load_store(merged);
    util::remove_stale_temp_files(dir);
    w_run(dir);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Workload 4: lease-table WAL (atomic checkpoint per transition). The
// recovery invariant is the strongest of the set: the state file on disk
// is byte-identical to SOME checkpoint of the transition sequence — never
// a tear, never a blend of two checkpoints.

const char kLeaseHeader[] = "torture-lease v1";

/// The checkpoint sequence, pure in-memory: returns every state-file
/// content the workload persists, in order.
std::vector<std::string> lease_checkpoints() {
  std::vector<std::string> checkpoints;
  sweep::LeaseTable table(4);
  const auto checkpoint = [&] {
    checkpoints.push_back(std::string(kLeaseHeader) + "\n" +
                          table.serialize());
  };
  table.at(0).state = sweep::ShardState::Leased;
  table.at(0).holder = 0;
  checkpoint();
  table.at(0).state = sweep::ShardState::Completed;
  table.at(0).holder = -1;
  checkpoint();
  table.at(1).state = sweep::ShardState::Leased;
  table.at(1).holder = 1;
  checkpoint();
  table.at(1).state = sweep::ShardState::Pending;
  table.at(1).holder = -1;
  table.at(1).attempts = 1;
  table.at(1).evidence = "worker died";
  checkpoint();
  table.at(1).state = sweep::ShardState::Leased;
  table.at(1).holder = 0;
  checkpoint();
  table.at(1).state = sweep::ShardState::Completed;
  table.at(1).holder = -1;
  checkpoint();
  table.at(2).state = sweep::ShardState::Quarantined;
  table.at(2).attempts = 3;
  table.at(2).evidence = "spin crash";
  checkpoint();
  table.at(3).state = sweep::ShardState::Completed;
  checkpoint();
  return checkpoints;
}

Workload lease_workload() {
  Workload w;
  w.name = "lease";
  w.run = [](const std::string& dir) {
    const std::string state = util::path_join(dir, "lease.state");
    for (const std::string& checkpoint : lease_checkpoints()) {
      util::atomic_write_file(state, checkpoint);
    }
  };
  w.recover = [w_run = w.run](const std::string& dir) {
    const std::string state = util::path_join(dir, "lease.state");
    if (const std::optional<std::string> text = util::read_file(state)) {
      // Parse must succeed...
      const std::size_t nl = text->find('\n');
      if (nl == std::string::npos ||
          text->substr(0, nl) != kLeaseHeader) {
        throw std::runtime_error("lease state header torn: " + *text);
      }
      sweep::LeaseTable::parse(text->substr(nl + 1));
      // ...and the bytes must be exactly some checkpoint of the sequence.
      const std::vector<std::string> checkpoints = lease_checkpoints();
      if (std::find(checkpoints.begin(), checkpoints.end(), *text) ==
          checkpoints.end()) {
        throw std::runtime_error(
            "lease state is not any checkpoint of the sequence: " + *text);
      }
    }
    util::remove_stale_temp_files(dir);
    w_run(dir);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Workload 5: coordinator-style WAL checkpoint + shard stores + resume
// reconciliation — the miniature of sweep::Coordinator's protocol: lease a
// shard (checkpoint), publish its store, complete it (checkpoint); on
// re-entry adopt whatever valid stores and checkpoints survived.

const char kCoordHeader[] = "torture-coordinator v1 shards=3";

Workload coordinator_workload() {
  Workload w;
  w.name = "coordinator";
  w.run = [](const std::string& dir) {
    const std::string state = util::path_join(dir, "coordinator.state");
    const std::string shards = util::path_join(dir, "shards");
    util::create_directories(shards);

    sweep::LeaseTable table(3);
    if (const std::optional<std::string> text = util::read_file(state)) {
      const std::size_t nl = text->find('\n');
      if (nl != std::string::npos && text->substr(0, nl) == kCoordHeader) {
        table = sweep::LeaseTable::parse(text->substr(nl + 1));
      }
    }
    const auto save_state = [&] {
      util::atomic_write_file(state,
                              std::string(kCoordHeader) + "\n" +
                                  table.serialize());
    };
    for (std::uint64_t i = 0; i < 3; ++i) {
      const std::string store_path =
          util::path_join(shards, "s" + std::to_string(i) + ".omps");
      bool store_valid = false;
      if (util::file_exists(store_path)) {
        try {
          sweep::Dataset::load_store(store_path);
          store_valid = true;
        } catch (const util::DataCorruptionError&) {
          util::remove_file(store_path);  // cannot happen if publish is atomic
        }
      }
      if (table.at(i).state == sweep::ShardState::Completed && store_valid) {
        continue;  // resumed: the WAL and the store agree
      }
      table.at(i).state = sweep::ShardState::Leased;
      table.at(i).holder = 0;
      save_state();
      if (!store_valid) small_dataset(200 + i).save_store(store_path);
      table.at(i).state = sweep::ShardState::Completed;
      table.at(i).holder = -1;
      save_state();
    }
  };
  w.recover = [w_run = w.run](const std::string& dir) {
    // The WAL, whenever present, must parse — resume never guesses.
    const std::string state = util::path_join(dir, "coordinator.state");
    if (const std::optional<std::string> text = util::read_file(state)) {
      const std::size_t nl = text->find('\n');
      if (nl == std::string::npos || text->substr(0, nl) != kCoordHeader) {
        throw std::runtime_error("coordinator WAL header torn: " + *text);
      }
      sweep::LeaseTable::parse(text->substr(nl + 1));
    }
    util::remove_stale_temp_files(dir);
    util::remove_stale_temp_files(util::path_join(dir, "shards"));
    w_run(dir);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Workload 6: durable incident log — append-only with tear-repair and
// size-capped rotation. Appends may tear mid-line by design; recovery
// truncates the torn tail and re-appends exactly the missing lines.

Workload incident_log_workload() {
  Workload w;
  w.name = "incidentlog";
  w.run = [](const std::string& dir) {
    const std::string log = util::path_join(dir, "incidents.log");
    util::repair_appended_log(log);
    // 30-byte lines against a 100-byte cap: rotation fires exactly before
    // the fourth line, in the golden run and in every resumed one.
    std::vector<std::string> lines;
    for (int i = 0; i < 5; ++i) {
      lines.push_back("incident-" + std::to_string(i) + " " +
                      std::string(19, static_cast<char>('a' + i)));
    }
    std::set<std::string> present;
    for (const std::string& path : {log + ".1", log}) {
      if (const std::optional<std::string> text = util::read_file(path)) {
        std::size_t start = 0;
        while (start < text->size()) {
          const std::size_t nl = text->find('\n', start);
          if (nl == std::string::npos) break;
          present.insert(text->substr(start, nl - start));
          start = nl + 1;
        }
      }
    }
    for (const std::string& line : lines) {
      if (present.count(line) != 0) continue;
      util::append_line_durable(log, line, /*rotate_at_bytes=*/100);
    }
  };
  // Default recovery (sweep + re-run) is exactly the contract: run()
  // already repairs the torn tail and appends only what is missing.
  return w;
}

// ---------------------------------------------------------------------------

TEST(CrashConsistency, JournalAppendAndCompact) { torture(journal_workload()); }

TEST(CrashConsistency, StoreSaveIsAtomic) { torture(store_workload()); }

TEST(CrashConsistency, TieredCompaction) { torture(tiered_workload()); }

TEST(CrashConsistency, LeaseTableWal) { torture(lease_workload()); }

TEST(CrashConsistency, CoordinatorWalCheckpointResume) {
  torture(coordinator_workload());
}

TEST(CrashConsistency, IncidentLogAppendAndRotate) {
  torture(incident_log_workload());
}

}  // namespace
}  // namespace omptune

int main(int argc, char** argv) {
  // --torture-budget=N (0 = exhaustive) mirrors OMPTUNE_TORTURE_BUDGET for
  // CI command lines; strip it before gtest sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--torture-budget=";
    if (arg.rfind(prefix, 0) == 0) {
      ::setenv("OMPTUNE_TORTURE_BUDGET", arg.c_str() + prefix.size(), 1);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
