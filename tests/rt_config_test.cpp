// Tests for the environment-variable surface: Section III of the paper,
// including every default-derivation rule it documents.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"
#include "util/env.hpp"

namespace omptune::rt {
namespace {

using arch::ArchId;
using arch::architecture;
using util::ScopedEnv;

const char* kAllVars[] = {
    "OMP_NUM_THREADS", "OMP_PLACES",    "OMP_PROC_BIND",
    "OMP_SCHEDULE",    "OMP_WAIT_POLICY", "KMP_LIBRARY",
    "KMP_BLOCKTIME",   "KMP_FORCE_REDUCTION", "KMP_ALIGN_ALLOC",
};

/// Clears the whole variable surface for the duration of a test.
ScopedEnv clean_env() {
  std::vector<ScopedEnv::Assignment> assignments;
  for (const char* name : kAllVars) assignments.push_back({name, std::nullopt});
  return ScopedEnv(std::move(assignments));
}

TEST(RtConfigDefaults, MatchPaperSectionThree) {
  const auto env = clean_env();
  const auto& skylake = architecture(ArchId::Skylake);
  const RtConfig config = RtConfig::from_env(skylake);

  EXPECT_EQ(config.places, arch::PlacesKind::Unset);
  EXPECT_EQ(config.bind, arch::BindKind::Unset);
  EXPECT_EQ(config.effective_bind(), arch::BindKind::False_);
  EXPECT_EQ(config.schedule, ScheduleKind::Static);
  EXPECT_EQ(config.chunk, 0);
  EXPECT_EQ(config.library, LibraryMode::Throughput);
  EXPECT_EQ(config.blocktime_ms, 200);
  EXPECT_EQ(config.reduction, ReductionMethod::Default);
  EXPECT_EQ(config.effective_num_threads(skylake), 40);
  EXPECT_EQ(config.effective_align(skylake), 64);
}

TEST(RtConfigDefaults, AlignDefaultIsCachelinePerArchitecture) {
  const auto env = clean_env();
  EXPECT_EQ(RtConfig::from_env(architecture(ArchId::A64FX))
                .effective_align(architecture(ArchId::A64FX)),
            256);
  EXPECT_EQ(RtConfig::from_env(architecture(ArchId::Milan))
                .effective_align(architecture(ArchId::Milan)),
            64);
}

TEST(RtConfigDefaults, ProcBindDerivation) {
  // Paper III.2: unset bind == false, but if OMP_PLACES is set the default
  // becomes spread.
  RtConfig config;
  config.places = arch::PlacesKind::Unset;
  config.bind = arch::BindKind::Unset;
  EXPECT_EQ(config.effective_bind(), arch::BindKind::False_);

  config.places = arch::PlacesKind::Cores;
  EXPECT_EQ(config.effective_bind(), arch::BindKind::Spread);

  // An explicit bind always wins.
  config.bind = arch::BindKind::Master;
  EXPECT_EQ(config.effective_bind(), arch::BindKind::Master);
  config.places = arch::PlacesKind::Unset;
  EXPECT_EQ(config.effective_bind(), arch::BindKind::Master);
}

TEST(RtConfigEnv, ParsesEveryVariable) {
  const auto clean = clean_env();
  const ScopedEnv env({
      {"OMP_NUM_THREADS", "12"},
      {"OMP_PLACES", "ll_caches"},
      {"OMP_PROC_BIND", "spread"},
      {"OMP_SCHEDULE", "guided,8"},
      {"KMP_LIBRARY", "turnaround"},
      {"KMP_BLOCKTIME", "infinite"},
      {"KMP_FORCE_REDUCTION", "atomic"},
      {"KMP_ALIGN_ALLOC", "512"},
  });
  const RtConfig config = RtConfig::from_env(architecture(ArchId::Milan));
  EXPECT_EQ(config.num_threads, 12);
  EXPECT_EQ(config.places, arch::PlacesKind::LLCaches);
  EXPECT_EQ(config.bind, arch::BindKind::Spread);
  EXPECT_EQ(config.schedule, ScheduleKind::Guided);
  EXPECT_EQ(config.chunk, 8);
  EXPECT_EQ(config.library, LibraryMode::Turnaround);
  EXPECT_EQ(config.blocktime_ms, kBlocktimeInfinite);
  EXPECT_EQ(config.reduction, ReductionMethod::Atomic);
  EXPECT_EQ(config.align_alloc, 512);
}

TEST(RtConfigEnv, CaseInsensitiveValues) {
  const auto clean = clean_env();
  const ScopedEnv env({{"KMP_LIBRARY", "TurnAround"},
                       {"OMP_SCHEDULE", "DYNAMIC"},
                       {"KMP_BLOCKTIME", "Infinite"}});
  const RtConfig config = RtConfig::from_env(architecture(ArchId::A64FX));
  EXPECT_EQ(config.library, LibraryMode::Turnaround);
  EXPECT_EQ(config.schedule, ScheduleKind::Dynamic);
  EXPECT_EQ(config.blocktime_ms, kBlocktimeInfinite);
}

TEST(RtConfigEnv, RejectsMalformedValues) {
  const auto clean = clean_env();
  const auto& cpu = architecture(ArchId::Skylake);
  {
    const ScopedEnv env({{"OMP_NUM_THREADS", "zero"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"OMP_NUM_THREADS", "-3"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"OMP_SCHEDULE", "static,0"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"OMP_SCHEDULE", "fifo"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"KMP_BLOCKTIME", "-1"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"KMP_BLOCKTIME", "99999999999999"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"KMP_ALIGN_ALLOC", "48"}});  // not a power of two
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"KMP_FORCE_REDUCTION", "vectorized"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
  {
    const ScopedEnv env({{"OMP_PLACES", "everywhere"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
}

TEST(RtConfigWaitPolicy, DerivedFromBlocktimeAndLibrary) {
  // Paper Section III: OMP_WAIT_POLICY behaviour derives from KMP_BLOCKTIME
  // and KMP_LIBRARY.
  RtConfig config;
  config.library = LibraryMode::Throughput;
  config.blocktime_ms = 200;
  EXPECT_EQ(config.wait_policy(), WaitPolicy::SpinThenSleep);

  config.blocktime_ms = 0;
  EXPECT_EQ(config.wait_policy(), WaitPolicy::Passive);

  config.blocktime_ms = kBlocktimeInfinite;
  EXPECT_EQ(config.wait_policy(), WaitPolicy::Active);

  config.library = LibraryMode::Turnaround;
  config.blocktime_ms = 0;  // turnaround overrides: always active
  EXPECT_EQ(config.wait_policy(), WaitPolicy::Active);
}

TEST(RtConfigWaitPolicy, OmpWaitPolicyAliasesTheKmpPair) {
  const auto clean = clean_env();
  const auto& cpu = architecture(ArchId::Skylake);
  {
    const ScopedEnv env({{"OMP_WAIT_POLICY", "active"}});
    EXPECT_EQ(RtConfig::from_env(cpu).blocktime_ms, kBlocktimeInfinite);
    EXPECT_EQ(RtConfig::from_env(cpu).wait_policy(), WaitPolicy::Active);
  }
  {
    const ScopedEnv env({{"OMP_WAIT_POLICY", "PASSIVE"}});
    EXPECT_EQ(RtConfig::from_env(cpu).blocktime_ms, 0);
    EXPECT_EQ(RtConfig::from_env(cpu).wait_policy(), WaitPolicy::Passive);
  }
  {
    // The implementation-defined variables win over the alias — the reason
    // the paper sweeps KMP_* directly.
    const ScopedEnv env({{"OMP_WAIT_POLICY", "active"}, {"KMP_BLOCKTIME", "200"}});
    EXPECT_EQ(RtConfig::from_env(cpu).blocktime_ms, 200);
  }
  {
    const ScopedEnv env({{"OMP_WAIT_POLICY", "sometimes"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
}

TEST(RtConfigReduction, HeuristicMatchesPaper) {
  // Paper III.6: 1 thread -> special path (no sync), 2..4 -> critical,
  // more -> tree.
  RtConfig config;  // reduction Default
  EXPECT_EQ(config.reduction_method_for(1), ReductionMethod::Tree);
  EXPECT_EQ(config.reduction_method_for(2), ReductionMethod::Critical);
  EXPECT_EQ(config.reduction_method_for(4), ReductionMethod::Critical);
  EXPECT_EQ(config.reduction_method_for(5), ReductionMethod::Tree);
  EXPECT_EQ(config.reduction_method_for(96), ReductionMethod::Tree);

  config.reduction = ReductionMethod::Atomic;
  EXPECT_EQ(config.reduction_method_for(96), ReductionMethod::Atomic);
  EXPECT_EQ(config.reduction_method_for(2), ReductionMethod::Atomic);

  EXPECT_THROW(config.reduction_method_for(0), std::invalid_argument);
}

TEST(RtConfigEnvExport, RoundTripsThroughProcessEnvironment) {
  const auto clean = clean_env();
  const auto& cpu = architecture(ArchId::Milan);

  RtConfig config;
  config.num_threads = 24;
  config.places = arch::PlacesKind::Sockets;
  config.bind = arch::BindKind::Close;
  config.schedule = ScheduleKind::Dynamic;
  config.chunk = 16;
  config.library = LibraryMode::Turnaround;
  config.blocktime_ms = 0;
  config.reduction = ReductionMethod::Tree;
  config.align_alloc = 128;

  const ScopedEnv env(config.to_env(cpu));
  const RtConfig parsed = RtConfig::from_env(cpu);
  EXPECT_EQ(parsed, config);
}

TEST(RtConfigEnvExport, DefaultsExportAsUnset) {
  const auto clean = clean_env();
  const auto& cpu = architecture(ArchId::Skylake);
  const RtConfig config = RtConfig::defaults_for(cpu);
  {
    const ScopedEnv env(config.to_env(cpu));
    EXPECT_FALSE(util::get_env("OMP_NUM_THREADS").has_value());
    EXPECT_FALSE(util::get_env("OMP_PLACES").has_value());
    EXPECT_FALSE(util::get_env("OMP_PROC_BIND").has_value());
    EXPECT_FALSE(util::get_env("KMP_FORCE_REDUCTION").has_value());
    EXPECT_EQ(util::get_env("KMP_LIBRARY"), "throughput");
    EXPECT_EQ(util::get_env("KMP_BLOCKTIME"), "200");
  }
}

TEST(RtConfigKey, DistinctConfigsHaveDistinctKeys) {
  RtConfig a, b;
  b.schedule = ScheduleKind::Guided;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.blocktime_ms = kBlocktimeInfinite;
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key().find("blocktime=200"), std::string::npos);
  EXPECT_NE(b.key().find("blocktime=infinite"), std::string::npos);
}

TEST(RtConfigBarrier, ParsesKmpBarrierPattern) {
  const auto clean = clean_env();
  const auto& cpu = architecture(ArchId::Skylake);
  EXPECT_EQ(RtConfig::from_env(cpu).barrier, BarrierKind::Auto);
  {
    const ScopedEnv env({{"KMP_BARRIER_PATTERN", "dissemination"}});
    EXPECT_EQ(RtConfig::from_env(cpu).barrier, BarrierKind::Dissemination);
  }
  {
    // libomp spells the flat barrier "hyper"-adjacent aliases; we accept
    // "flat" and "linear" as synonyms of hybrid/central respectively.
    const ScopedEnv env({{"KMP_BARRIER_PATTERN", "flat"}});
    EXPECT_EQ(RtConfig::from_env(cpu).barrier, BarrierKind::Hybrid);
  }
  {
    const ScopedEnv env({{"KMP_BARRIER_PATTERN", "linear"}});
    EXPECT_EQ(RtConfig::from_env(cpu).barrier, BarrierKind::Central);
  }
  {
    const ScopedEnv env({{"KMP_BARRIER_PATTERN", "hypercube"}});
    EXPECT_THROW(RtConfig::from_env(cpu), std::invalid_argument);
  }
}

TEST(RtConfigBarrier, ExportsAndKeysOnlyNonAutoChoice) {
  const auto& cpu = architecture(ArchId::Skylake);
  RtConfig config = RtConfig::defaults_for(cpu);

  // Auto is the derived default: exported as an explicit *unset* (so a
  // child inherits nothing stale) and invisible in the sweep key, keeping
  // pre-catalogue keys stable.
  const auto pattern_of = [](const std::vector<util::ScopedEnv::Assignment>&
                                 exported) {
    for (const auto& assignment : exported) {
      if (assignment.name == "KMP_BARRIER_PATTERN") return assignment.value;
    }
    ADD_FAILURE() << "KMP_BARRIER_PATTERN not in to_env output";
    return std::optional<std::string>{};
  };
  EXPECT_EQ(pattern_of(config.to_env(cpu)), std::nullopt);
  EXPECT_EQ(config.key().find("barrier="), std::string::npos);

  config.barrier = BarrierKind::Tree;
  EXPECT_EQ(pattern_of(config.to_env(cpu)), "tree");
  EXPECT_NE(config.key().find("barrier=tree"), std::string::npos);

  RtConfig other = RtConfig::defaults_for(cpu);
  other.barrier = BarrierKind::Dissemination;
  EXPECT_NE(config.key(), other.key());
}

TEST(EnumStrings, RoundTrips) {
  for (const ScheduleKind kind : {ScheduleKind::Static, ScheduleKind::Dynamic,
                                  ScheduleKind::Guided, ScheduleKind::Auto}) {
    EXPECT_EQ(schedule_from_string(to_string(kind)), kind);
  }
  for (const LibraryMode mode :
       {LibraryMode::Serial, LibraryMode::Throughput, LibraryMode::Turnaround}) {
    EXPECT_EQ(library_from_string(to_string(mode)), mode);
  }
  for (const ReductionMethod method :
       {ReductionMethod::Default, ReductionMethod::Tree,
        ReductionMethod::Critical, ReductionMethod::Atomic}) {
    EXPECT_EQ(reduction_from_string(to_string(method)), method);
  }
  for (const BarrierKind kind :
       {BarrierKind::Auto, BarrierKind::Central, BarrierKind::Tree,
        BarrierKind::Dissemination, BarrierKind::Hybrid}) {
    EXPECT_EQ(barrier_from_string(to_string(kind)), kind);
  }
}

}  // namespace
}  // namespace omptune::rt
