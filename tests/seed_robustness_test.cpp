// Seed-robustness: the study's qualitative conclusions must not depend on
// the master seed (i.e. on which configurations the subsample draws or on
// the noise realization). Runs the reduced study under three different
// seeds and asserts the headline claims hold under each.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/study.hpp"
#include "sim/executor.hpp"

namespace omptune {
namespace {

core::StudyResult run_with_seed(std::uint64_t seed) {
  sim::ModelRunner runner;
  core::Study study(runner, core::StudyOptions{.repetitions = 3, .seed = seed});
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    for (auto& count : arch_plan.configs_per_setting) count = 150;
  }
  return study.run(plan);
}

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, HeadlineClaimsHoldUnderThisSeed) {
  const core::StudyResult result = run_with_seed(GetParam());

  // Medians ordered A64FX < Skylake < Milan; A64FX holds the global max.
  auto upshot_of = [&result](const std::string& arch) {
    return *std::find_if(result.upshot.begin(), result.upshot.end(),
                         [&arch](const auto& u) { return u.arch == arch; });
  };
  EXPECT_LT(upshot_of("a64fx").median_best, upshot_of("skylake").median_best);
  EXPECT_LT(upshot_of("skylake").median_best, upshot_of("milan").median_best);
  EXPECT_GT(upshot_of("a64fx").max_best, 3.0);

  // XSBench: Milan-only blowup.
  double milan_xs = 0.0, skylake_xs = 0.0;
  for (const auto& r : result.ranges_by_arch) {
    if (r.app == "xsbench" && r.arch == "milan") milan_xs = r.hi;
    if (r.app == "xsbench" && r.arch == "skylake") skylake_xs = r.hi;
  }
  EXPECT_GT(milan_xs, 1.8);
  EXPECT_LT(skylake_xs, 1.15);

  // NQueens: turnaround everywhere.
  const auto recs = analysis::recommend_for_app(result.dataset, "nqueens");
  EXPECT_TRUE(std::any_of(recs.begin(), recs.end(), [](const auto& rec) {
    return rec.arch == "all" && rec.variable == "KMP_LIBRARY" &&
           rec.value == "turnaround";
  }));

  // Worst trend: master binding.
  ASSERT_FALSE(result.worst_trends.empty());
  EXPECT_NE(result.worst_trends.front().condition.find("master"),
            std::string::npos);
  EXPECT_GT(result.worst_trends.front().lift, 3.0);

  // Influence: reduction/align least relevant per architecture.
  for (const auto& row : result.per_arch_influence.rows) {
    EXPECT_LT(result.per_arch_influence.at(row.group, "KMP_FORCE_REDUCTION"),
              result.per_arch_influence.at(row.group, "KMP_LIBRARY"))
        << row.group;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(0xDEADBEEFull, 12345ull,
                                           0xFEEDFACEull));

TEST(SeedRobustness, DifferentSeedsProduceDifferentSamplesSameShape) {
  const core::StudyResult a = run_with_seed(1);
  const core::StudyResult b = run_with_seed(2);
  // The subsamples genuinely differ...
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    differing += !(a.dataset.samples()[i].config == b.dataset.samples()[i].config);
  }
  EXPECT_GT(differing, a.dataset.size() / 4);
  // ...but the per-arch medians agree closely.
  for (std::size_t i = 0; i < a.upshot.size(); ++i) {
    EXPECT_NEAR(a.upshot[i].median_best, b.upshot[i].median_best, 0.15)
        << a.upshot[i].arch;
  }
}

}  // namespace
}  // namespace omptune
