// Determinism suite for the parallel analytics engine: every store-backed
// analysis must equal the original Dataset walk exactly (the pre-pool
// serial results), and must be bit-identical across pool sizes 1, 2, 7 and
// 16 — thread count may only ever change wall-clock time.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/marginals.hpp"
#include "analysis/recommend.hpp"
#include "analysis/speedup.hpp"
#include "core/study.hpp"
#include "ml/features.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "store/reader.hpp"
#include "sweep/dataset.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace omptune {
namespace {

/// Study-shaped dataset with real structure for the model fits and a
/// sprinkling of quarantined placeholder rows the analyses must skip.
sweep::Dataset synthetic_dataset(std::size_t target) {
  const char* archs[] = {"a64fx", "milan", "skylake"};
  const char* apps[] = {"bt", "cg", "health", "nqueens", "rsbench", "xsbench"};
  const char* inputs[] = {"small", "large"};
  util::Xoshiro256 rng(7);
  sweep::Dataset dataset;
  for (const char* arch : archs) {
    for (const char* app : apps) {
      for (const char* input : inputs) {
        const std::size_t configs = target / (3 * 6 * 2);
        for (std::size_t c = 0; c < configs; ++c) {
          sweep::Sample s;
          s.arch = arch;
          s.app = app;
          s.suite = "synthetic";
          s.kind = c % 2 == 0 ? "loop" : "task";
          s.input = input;
          s.threads = 48;
          s.config.num_threads = 48;
          s.config.places = static_cast<arch::PlacesKind>(rng.uniform_index(6));
          s.config.bind = static_cast<arch::BindKind>(rng.uniform_index(6));
          s.config.schedule =
              static_cast<rt::ScheduleKind>(rng.uniform_index(4));
          s.config.chunk = static_cast<int>(rng.uniform_index(4)) * 8;
          s.config.library = static_cast<rt::LibraryMode>(rng.uniform_index(3));
          s.config.blocktime_ms =
              static_cast<std::int64_t>(rng.uniform_index(5)) * 100;
          s.config.reduction =
              static_cast<rt::ReductionMethod>(rng.uniform_index(4));
          s.config.align_alloc = 64 << rng.uniform_index(4);
          const double base =
              1.7 *
              (s.config.library == rt::LibraryMode::Throughput ? 0.8 : 1.1) *
              (s.config.bind == arch::BindKind::Spread ? 0.9 : 1.0);
          for (int r = 0; r < 4; ++r) {
            s.runtimes.push_back(base * rng.uniform(0.85, 1.15));
          }
          s.mean_runtime = (s.runtimes[0] + s.runtimes[1] + s.runtimes[2] +
                            s.runtimes[3]) / 4.0;
          s.default_runtime = 1.7;
          s.speedup = s.default_runtime / s.mean_runtime;
          s.is_default = c == 0;
          // ~4% quarantined placeholders: zeroed measurements that must not
          // leak into any statistic.
          if (!s.is_default && rng.uniform_index(25) == 0) {
            s.status = sweep::SampleStatus::Quarantined;
            s.error = "injected";
            for (double& r : s.runtimes) r = 0.0;
            s.mean_runtime = 0.0;
            s.speedup = 0.0;
          }
          dataset.add(std::move(s));
        }
      }
    }
  }
  return dataset;
}

/// Shared golden store: built once, read by every test in the binary.
struct Golden {
  std::string dir;
  sweep::Dataset dataset;
  std::unique_ptr<store::StoreReader> reader;
  std::vector<std::unique_ptr<util::ThreadPool>> pools;  // 1, 2, 7, 16 lanes

  Golden() {
    dir = (std::filesystem::temp_directory_path() /
           ("omptune_par_test_" + std::to_string(::getpid())))
              .string();
    std::filesystem::create_directories(dir);
    dataset = synthetic_dataset(3600);
    const std::string path = dir + "/golden.omps";
    dataset.save_store(path);
    reader = std::make_unique<store::StoreReader>(path);
    for (const unsigned lanes : {1u, 2u, 7u, 16u}) {
      pools.push_back(std::make_unique<util::ThreadPool>(lanes));
    }
  }
  ~Golden() { std::filesystem::remove_all(dir); }
};

const Golden& golden() {
  static Golden g;
  return g;
}

void expect_equal(const std::vector<analysis::SettingBest>& got,
                  const std::vector<analysis::SettingBest>& want,
                  const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].arch, want[i].arch) << label << " row " << i;
    EXPECT_EQ(got[i].app, want[i].app) << label << " row " << i;
    EXPECT_EQ(got[i].input, want[i].input) << label << " row " << i;
    EXPECT_EQ(got[i].threads, want[i].threads) << label << " row " << i;
    EXPECT_EQ(got[i].best_speedup, want[i].best_speedup) << label << " row " << i;
    EXPECT_EQ(got[i].best_config.key(), want[i].best_config.key())
        << label << " row " << i;
  }
}

TEST(ParallelAnalysisTest, BestPerSettingEqualsDatasetWalkAtEveryPoolSize) {
  const Golden& g = golden();
  // The Dataset walk is the pre-pool serial implementation — unchanged in
  // this codebase, so it doubles as the golden reference.
  const auto want = analysis::best_per_setting(g.dataset.ok_samples());
  expect_equal(analysis::best_per_setting(*g.reader, nullptr), want, "serial");
  for (const auto& pool : g.pools) {
    expect_equal(analysis::best_per_setting(*g.reader, pool.get()), want,
                 std::to_string(pool->threads()) + " lanes");
  }
}

TEST(ParallelAnalysisTest, RangesAndUpshotEqualDatasetWalkAtEveryPoolSize) {
  const Golden& g = golden();
  const sweep::Dataset clean = g.dataset.ok_samples();
  const auto want_arch = analysis::speedup_ranges_by_arch(clean);
  const auto want_app = analysis::speedup_ranges_by_app(clean);
  const auto want_upshot = analysis::upshot_by_arch(clean);
  for (const auto& pool : g.pools) {
    const auto by_arch = analysis::speedup_ranges_by_arch(*g.reader, pool.get());
    ASSERT_EQ(by_arch.size(), want_arch.size());
    for (std::size_t i = 0; i < by_arch.size(); ++i) {
      EXPECT_EQ(by_arch[i].app, want_arch[i].app);
      EXPECT_EQ(by_arch[i].arch, want_arch[i].arch);
      EXPECT_EQ(by_arch[i].lo, want_arch[i].lo);
      EXPECT_EQ(by_arch[i].hi, want_arch[i].hi);
    }
    const auto by_app = analysis::speedup_ranges_by_app(*g.reader, pool.get());
    ASSERT_EQ(by_app.size(), want_app.size());
    for (std::size_t i = 0; i < by_app.size(); ++i) {
      EXPECT_EQ(by_app[i].app, want_app[i].app);
      EXPECT_EQ(by_app[i].lo, want_app[i].lo);
      EXPECT_EQ(by_app[i].hi, want_app[i].hi);
    }
    const auto upshot = analysis::upshot_by_arch(*g.reader, pool.get());
    ASSERT_EQ(upshot.size(), want_upshot.size());
    for (std::size_t i = 0; i < upshot.size(); ++i) {
      EXPECT_EQ(upshot[i].arch, want_upshot[i].arch);
      EXPECT_EQ(upshot[i].min_best, want_upshot[i].min_best);
      EXPECT_EQ(upshot[i].median_best, want_upshot[i].median_best);
      EXPECT_EQ(upshot[i].max_best, want_upshot[i].max_best);
    }
  }
}

TEST(ParallelAnalysisTest, MarginalsEqualDatasetWalkAtEveryPoolSize) {
  const Golden& g = golden();
  for (const bool per_arch : {true, false}) {
    const auto want =
        analysis::value_marginals(g.dataset.ok_samples(), per_arch);
    for (const auto& pool : g.pools) {
      const auto got = analysis::value_marginals(*g.reader, per_arch, pool.get());
      ASSERT_EQ(got.size(), want.size()) << per_arch;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].arch, want[i].arch);
        EXPECT_EQ(got[i].variable, want[i].variable);
        EXPECT_EQ(got[i].value, want[i].value);
        EXPECT_EQ(got[i].samples, want[i].samples);
        EXPECT_EQ(got[i].mean_speedup, want[i].mean_speedup);
        EXPECT_EQ(got[i].median_speedup, want[i].median_speedup);
        EXPECT_EQ(got[i].p95_speedup, want[i].p95_speedup);
        EXPECT_EQ(got[i].optimal_share, want[i].optimal_share);
      }
    }
  }
}

TEST(ParallelAnalysisTest, RecommendationsEqualDatasetWalkAtEveryPoolSize) {
  const Golden& g = golden();
  for (const char* app : {"nqueens", "xsbench"}) {
    const auto want = analysis::recommend_for_app(g.dataset, app);
    for (const auto& pool : g.pools) {
      const auto got =
          analysis::recommend_for_app(*g.reader, app, 0.01, 1.3, pool.get());
      ASSERT_EQ(got.size(), want.size()) << app;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].app, want[i].app);
        EXPECT_EQ(got[i].arch, want[i].arch);
        EXPECT_EQ(got[i].variable, want[i].variable);
        EXPECT_EQ(got[i].value, want[i].value);
        EXPECT_EQ(got[i].lift, want[i].lift);
        EXPECT_EQ(got[i].share_in_best, want[i].share_in_best);
      }
    }
  }
}

TEST(ParallelAnalysisTest, SettingSummariesBitIdenticalAcrossPoolSizes) {
  const Golden& g = golden();
  const auto want = analysis::setting_runtime_summaries(*g.reader, nullptr);
  ASSERT_FALSE(want.empty());
  for (const auto& s : want) {
    EXPECT_GT(s.runtime.count, 0u);
    EXPECT_GT(s.runtime.mean, 0.0);  // quarantined zero-runtimes excluded
  }
  for (const auto& pool : g.pools) {
    const auto got = analysis::setting_runtime_summaries(*g.reader, pool.get());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].arch, want[i].arch);
      EXPECT_EQ(got[i].app, want[i].app);
      EXPECT_EQ(got[i].input, want[i].input);
      EXPECT_EQ(got[i].threads, want[i].threads);
      EXPECT_EQ(got[i].runtime.count, want[i].runtime.count);
      EXPECT_EQ(got[i].runtime.mean, want[i].runtime.mean);
      EXPECT_EQ(got[i].runtime.stddev, want[i].runtime.stddev);
      EXPECT_EQ(got[i].runtime.median, want[i].runtime.median);
    }
  }
}

void expect_equal(const analysis::InfluenceMap& got,
                  const analysis::InfluenceMap& want, const std::string& label) {
  ASSERT_EQ(got.feature_names, want.feature_names) << label;
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (std::size_t i = 0; i < got.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].group, want.rows[i].group) << label;
    EXPECT_EQ(got.rows[i].influence, want.rows[i].influence) << label;
    EXPECT_EQ(got.rows[i].model_accuracy, want.rows[i].model_accuracy) << label;
    EXPECT_EQ(got.rows[i].positive_share, want.rows[i].positive_share) << label;
    EXPECT_EQ(got.rows[i].samples, want.rows[i].samples) << label;
  }
}

TEST(ParallelAnalysisTest, AnalyzeStoreEqualsSerialAnalyzeAtEveryPoolSize) {
  const Golden& g = golden();
  sim::ModelRunner runner;
  const core::Study study(runner);
  const core::StudyResult want = study.analyze(g.dataset);  // pre-pool path
  for (const auto& pool : g.pools) {
    const core::StudyResult got = study.analyze_store(*g.reader, pool.get());
    EXPECT_EQ(got.dataset.size(), want.dataset.size());
    ASSERT_EQ(got.upshot.size(), want.upshot.size());
    for (std::size_t i = 0; i < got.upshot.size(); ++i) {
      EXPECT_EQ(got.upshot[i].arch, want.upshot[i].arch);
      EXPECT_EQ(got.upshot[i].min_best, want.upshot[i].min_best);
      EXPECT_EQ(got.upshot[i].median_best, want.upshot[i].median_best);
      EXPECT_EQ(got.upshot[i].max_best, want.upshot[i].max_best);
    }
    expect_equal(got.per_app_influence, want.per_app_influence, "per-app");
    expect_equal(got.per_arch_influence, want.per_arch_influence, "per-arch");
    expect_equal(got.per_arch_app_influence, want.per_arch_app_influence,
                 "per-arch-app");
    ASSERT_EQ(got.worst_trends.size(), want.worst_trends.size());
    for (std::size_t i = 0; i < got.worst_trends.size(); ++i) {
      EXPECT_EQ(got.worst_trends[i].condition, want.worst_trends[i].condition);
      EXPECT_EQ(got.worst_trends[i].lift, want.worst_trends[i].lift);
    }
  }
}

TEST(ParallelAnalysisTest, LogisticFitBitIdenticalAcrossPoolSizes) {
  const Golden& g = golden();
  const ml::FeatureEncoder encoder;
  const sweep::Dataset clean = g.dataset.ok_samples();
  const ml::Matrix x = encoder.encode(clean);
  const std::vector<int> y = ml::FeatureEncoder::labels(clean);

  ml::LogisticRegression serial;
  serial.fit(x, y, nullptr);
  for (const auto& pool : g.pools) {
    ml::LogisticRegression parallel;
    parallel.fit(x, y, pool.get());
    EXPECT_EQ(parallel.coefficients(), serial.coefficients())
        << pool->threads() << " lanes";
    EXPECT_EQ(parallel.intercept(), serial.intercept());
    EXPECT_EQ(parallel.predict_proba(x, pool.get()),
              serial.predict_proba(x, nullptr));
    EXPECT_EQ(parallel.accuracy(x, y, pool.get()), serial.accuracy(x, y));
  }
}

TEST(ParallelAnalysisTest, ForestFitBitIdenticalAcrossPoolSizes) {
  const Golden& g = golden();
  const ml::FeatureEncoder encoder;
  const sweep::Dataset clean = g.dataset.ok_samples();
  const ml::Matrix x = encoder.encode(clean);
  const std::vector<int> y = ml::FeatureEncoder::labels(clean);

  ml::ForestOptions options;
  options.num_trees = 12;
  ml::RandomForest serial(options);
  serial.fit(x, y, nullptr);
  for (const auto& pool : g.pools) {
    ml::RandomForest parallel(options);
    parallel.fit(x, y, pool.get());
    EXPECT_EQ(parallel.predict_proba(x), serial.predict_proba(x))
        << pool->threads() << " lanes";
    EXPECT_EQ(parallel.oob_accuracy(), serial.oob_accuracy());
    EXPECT_EQ(parallel.feature_importance(), serial.feature_importance());
  }
}

TEST(ParallelAnalysisTest, ScanCountsRuntimeSectionBytesExactlyOnce) {
  // The traffic counter is atomic (workers bump it concurrently during
  // query materialization) and scan validation charges the whole runtime
  // section exactly once, no matter how many scans follow.
  const Golden& g = golden();
  const std::string path = g.dir + "/counter.omps";
  g.dataset.save_store(path);
  const store::StoreReader reader(path);
  EXPECT_EQ(reader.runtime_bytes_touched(), 0u);

  const std::uint64_t runtime_section_bytes =
      static_cast<std::uint64_t>(reader.size()) * reader.repetitions() * 8;
  std::atomic<std::size_t> settings_seen{0};
  const util::ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    settings_seen = 0;
    reader.scan(
        [&](const store::SettingSlice& slice) {
          settings_seen.fetch_add(1, std::memory_order_relaxed);
          EXPECT_GT(slice.rows, 0u);
        },
        &pool);
    EXPECT_EQ(settings_seen.load(), reader.setting_count());
    EXPECT_EQ(reader.runtime_bytes_touched(), runtime_section_bytes);
  }
}

}  // namespace
}  // namespace omptune
