// Sweep harness tests: the configuration space of Section III, the study
// plan of Table II, speedup enrichment, and dataset CSV round-tripping.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "sim/executor.hpp"
#include "sweep/config_space.hpp"
#include "sweep/dataset.hpp"
#include "sweep/harness.hpp"

namespace omptune::sweep {
namespace {

using arch::ArchId;
using arch::architecture;

TEST(ConfigSpace, PaperSizes) {
  // X86: 4 places x 6 binds x 4 schedules x 2 libraries x 3 blocktimes x
  // 4 reductions x 4 aligns = 9216. A64FX has 2 aligns: 4608.
  EXPECT_EQ(ConfigSpace::paper_space(architecture(ArchId::Skylake)).size(), 9216u);
  EXPECT_EQ(ConfigSpace::paper_space(architecture(ArchId::Milan)).size(), 9216u);
  EXPECT_EQ(ConfigSpace::paper_space(architecture(ArchId::A64FX)).size(), 4608u);
}

TEST(ConfigSpace, A64fxAlignSetRespectsCacheline) {
  const auto space = ConfigSpace::paper_space(architecture(ArchId::A64FX));
  EXPECT_EQ(space.aligns, (std::vector<int>{256, 512}));
  const auto x86 = ConfigSpace::paper_space(architecture(ArchId::Skylake));
  EXPECT_EQ(x86.aligns, (std::vector<int>{64, 128, 256, 512}));
}

TEST(ConfigSpace, EnumerationIsExhaustiveAndUnique) {
  const auto space = ConfigSpace::paper_space(architecture(ArchId::A64FX));
  const auto configs = space.enumerate(0);
  EXPECT_EQ(configs.size(), space.size());
  std::set<std::string> keys;
  for (const auto& c : configs) keys.insert(c.key());
  EXPECT_EQ(keys.size(), configs.size());
}

TEST(ConfigSpace, SampleIsDeterministicAndAnchorsDefault) {
  const auto space = ConfigSpace::paper_space(architecture(ArchId::Milan));
  const auto a = space.sample(0, 500, 99);
  const auto b = space.sample(0, 500, 99);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  // Front element is the default configuration with the explicit
  // cache-line alignment.
  EXPECT_EQ(a.front().places, arch::PlacesKind::Unset);
  EXPECT_EQ(a.front().bind, arch::BindKind::Unset);
  EXPECT_EQ(a.front().schedule, rt::ScheduleKind::Static);
  EXPECT_EQ(a.front().library, rt::LibraryMode::Throughput);
  EXPECT_EQ(a.front().blocktime_ms, 200);
  EXPECT_EQ(a.front().reduction, rt::ReductionMethod::Default);
  EXPECT_EQ(a.front().align_alloc, 64);
  // Different seeds give different subsets.
  const auto c = space.sample(0, 500, 100);
  EXPECT_NE(a, c);
  EXPECT_EQ(c.front(), a.front());  // but the anchor is identical
}

TEST(ConfigSpace, SampleClampsToSpaceSize) {
  const auto space = ConfigSpace::paper_space(architecture(ArchId::A64FX));
  const auto all = space.sample(0, 1 << 20, 7);
  EXPECT_EQ(all.size(), space.size());
  std::set<std::string> keys;
  for (const auto& config : all) keys.insert(config.key());
  EXPECT_EQ(keys.size(), all.size());  // a permutation, not a resample
}

TEST(ThreadSweep, QuarterStepsOfTheMachine) {
  EXPECT_EQ(thread_sweep(architecture(ArchId::Skylake)),
            (std::vector<int>{10, 20, 30, 40}));
  EXPECT_EQ(thread_sweep(architecture(ArchId::Milan)),
            (std::vector<int>{24, 48, 72, 96}));
  EXPECT_EQ(thread_sweep(architecture(ArchId::A64FX)),
            (std::vector<int>{12, 24, 36, 48}));
}

TEST(StudyPlan, TableTwoSampleTotals) {
  const StudyPlan plan = StudyPlan::paper_plan();
  ASSERT_EQ(plan.arch_plans.size(), 3u);

  std::size_t total = 0;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    total += arch_plan.total_samples();
    std::set<std::string> app_names;
    for (const StudySetting& s : arch_plan.settings) {
      app_names.insert(s.app->name());
    }
    switch (arch_plan.arch) {
      case ArchId::A64FX:
        EXPECT_EQ(arch_plan.total_samples(), 53822u);
        EXPECT_EQ(app_names.size(), 15u);  // Table II: 15 applications
        break;
      case ArchId::Milan:
        EXPECT_EQ(arch_plan.total_samples(), 99707u);
        EXPECT_EQ(app_names.size(), 13u);
        EXPECT_EQ(app_names.count("sort"), 0u);
        EXPECT_EQ(app_names.count("strassen"), 0u);
        break;
      case ArchId::Skylake:
        EXPECT_EQ(arch_plan.total_samples(), 90230u);
        EXPECT_EQ(app_names.size(), 12u);
        break;
    }
  }
  EXPECT_EQ(total, 243759u);  // the paper's "over 240,000 unique samples"
}

TEST(StudyPlan, SettingsFollowSweepModes) {
  const StudyPlan plan = StudyPlan::paper_plan();
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    for (const StudySetting& s : arch_plan.settings) {
      if (s.app->sweep_mode() == apps::SweepMode::VaryInputSize) {
        EXPECT_EQ(s.num_threads, 0) << s.app->name();
      } else {
        EXPECT_GT(s.num_threads, 0) << s.app->name();
      }
    }
  }
}

TEST(SweepHarness, SettingProducesEnrichedSamples) {
  sim::ModelRunner runner;
  SweepHarness harness(runner, /*repetitions=*/3, /*seed=*/11);
  const auto& cpu = architecture(ArchId::Milan);
  StudySetting setting{&apps::find_application("xsbench"),
                       apps::find_application("xsbench").default_input(), 48};
  const Dataset dataset = harness.run_setting(cpu, setting, 200);
  ASSERT_EQ(dataset.size(), 200u);

  const Sample& first = dataset.samples().front();
  EXPECT_TRUE(first.is_default);
  EXPECT_DOUBLE_EQ(first.speedup, 1.0);
  EXPECT_EQ(first.threads, 48);

  int better = 0;
  for (const Sample& s : dataset.samples()) {
    ASSERT_EQ(s.runtimes.size(), 3u);
    EXPECT_GT(s.mean_runtime, 0.0);
    EXPECT_DOUBLE_EQ(s.default_runtime, first.mean_runtime);
    EXPECT_NEAR(s.speedup, s.default_runtime / s.mean_runtime, 1e-12);
    if (s.speedup > 1.01) ++better;
  }
  // XSBench on Milan has substantial tuning headroom.
  EXPECT_GT(better, 10);
}

TEST(SweepHarness, DeterministicAcrossRuns) {
  sim::ModelRunner runner_a, runner_b;
  SweepHarness a(runner_a, 2, 5), b(runner_b, 2, 5);
  const auto& cpu = architecture(ArchId::Skylake);
  StudySetting setting{&apps::find_application("cg"),
                       apps::find_application("cg").input_sizes().front(), 0};
  const Dataset da = a.run_setting(cpu, setting, 50);
  const Dataset db = b.run_setting(cpu, setting, 50);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.samples()[i].runtimes, db.samples()[i].runtimes);
  }
}

TEST(SweepHarness, RejectsNonPositiveRepetitions) {
  sim::ModelRunner runner;
  EXPECT_THROW(SweepHarness(runner, 0), std::invalid_argument);
}

TEST(SweepHarness, MiniStudyRunsAllArchitectures) {
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);
  const Dataset dataset =
      harness.run_study(StudyPlan::mini_plan(/*apps=*/2, /*configs=*/30));
  EXPECT_EQ(dataset.size(), 3u * 2u * 30u);
  const auto archs = dataset.distinct([](const Sample& s) { return s.arch; });
  EXPECT_EQ(archs.size(), 3u);
}

TEST(Dataset, CsvRoundTrip) {
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2);
  const auto& cpu = architecture(ArchId::A64FX);
  StudySetting setting{&apps::find_application("nqueens"),
                       apps::find_application("nqueens").input_sizes().front(), 0};
  const Dataset dataset = harness.run_setting(cpu, setting, 40);

  std::ostringstream os;
  dataset.to_csv().write(os);
  std::istringstream is(os.str());
  const Dataset parsed = Dataset::from_csv(util::CsvTable::read(is));

  ASSERT_EQ(parsed.size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Sample& a = dataset.samples()[i];
    const Sample& b = parsed.samples()[i];
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.app, b.app);
    // The CSV stores the resolved team size, so a default (0) thread count
    // normalizes to the explicit count on parse; compare resolved configs.
    rt::RtConfig resolved = a.config;
    resolved.num_threads = a.threads;
    EXPECT_EQ(resolved.key(), b.config.key());
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_NEAR(a.speedup, b.speedup, 1e-5);
    EXPECT_EQ(a.is_default, b.is_default);
    ASSERT_EQ(a.runtimes.size(), b.runtimes.size());
    for (std::size_t r = 0; r < a.runtimes.size(); ++r) {
      EXPECT_NEAR(a.runtimes[r], b.runtimes[r], 1e-7);
    }
  }
}

TEST(Dataset, FilterAndDistinct) {
  Dataset dataset;
  Sample s;
  s.arch = "milan";
  s.app = "cg";
  s.speedup = 1.2;
  dataset.add(s);
  s.arch = "a64fx";
  s.speedup = 0.9;
  dataset.add(s);
  const Dataset milan_only =
      dataset.filter([](const Sample& x) { return x.arch == "milan"; });
  EXPECT_EQ(milan_only.size(), 1u);
  EXPECT_EQ(dataset.distinct([](const Sample& x) { return x.arch; }),
            (std::vector<std::string>{"milan", "a64fx"}));
}

}  // namespace
}  // namespace omptune::sweep
