// End-to-end integration on the REAL runtime substrate: a miniature native
// sweep (wall-clock measurements of real kernels under different
// configurations on this host) flows through the same dataset/analysis
// pipeline as the model study. Absolute numbers depend on the host; the
// assertions only cover pipeline integrity and invariants.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "analysis/speedup.hpp"
#include "core/study.hpp"
#include "sim/executor.hpp"
#include "sweep/harness.hpp"

namespace omptune {
namespace {

TEST(NativeIntegration, MiniSweepFlowsThroughThePipeline) {
  // Tiny problems, few configs, 2 repetitions: seconds on any host.
  sim::NativeRunner runner(/*native_scale=*/0.02, /*max_threads=*/3);
  sweep::SweepHarness harness(runner, /*repetitions=*/2);

  const arch::CpuArch& cpu = arch::architecture(arch::ArchId::Skylake);
  sweep::Dataset dataset;
  for (const char* app_name : {"cg", "nqueens"}) {
    const apps::Application& app = apps::find_application(app_name);
    sweep::StudySetting setting{&app, app.input_sizes().front(), 3};
    dataset.append(harness.run_setting(cpu, setting, 12));
  }

  ASSERT_EQ(dataset.size(), 24u);
  for (const auto& s : dataset.samples()) {
    EXPECT_GT(s.mean_runtime, 0.0);
    EXPECT_GT(s.speedup, 0.0);
    EXPECT_EQ(s.runtimes.size(), 2u);
    EXPECT_EQ(s.threads, 3);
  }
  // Default anchored per setting.
  std::size_t defaults = 0;
  for (const auto& s : dataset.samples()) defaults += s.is_default;
  EXPECT_EQ(defaults, 2u);  // one per setting

  // The analysis layer accepts native data unchanged.
  const auto bests = analysis::best_per_setting(dataset);
  ASSERT_EQ(bests.size(), 2u);
  for (const auto& b : bests) {
    EXPECT_GE(b.best_speedup, 1.0);  // the best is at least the default
  }

  // The dataset round-trips to CSV like the model-mode datasets.
  std::ostringstream os;
  dataset.to_csv().write(os);
  std::istringstream is(os.str());
  EXPECT_EQ(sweep::Dataset::from_csv(util::CsvTable::read(is)).size(),
            dataset.size());
}

TEST(NativeIntegration, ChecksumsValidateDuringNativeSweep) {
  sim::NativeRunner runner(0.02, 2);
  const arch::CpuArch& cpu = arch::architecture(arch::ArchId::Skylake);
  const apps::Application& app = apps::find_application("mg");
  const apps::InputSize input = app.input_sizes().front();
  const double reference = app.run_reference(input, 0.02);

  for (const rt::LibraryMode library :
       {rt::LibraryMode::Throughput, rt::LibraryMode::Turnaround}) {
    rt::RtConfig config = rt::RtConfig::defaults_for(cpu);
    config.num_threads = 2;
    config.library = library;
    runner.run(app, input, cpu, config, 0, 0, 0);
    EXPECT_DOUBLE_EQ(runner.last_checksum(), reference)
        << rt::to_string(library);
  }
}

TEST(NativeIntegration, StudyDriverAcceptsNativeRunner) {
  // The Study orchestration is runner-agnostic: a (very small) native study
  // produces the same artefact structure as the model study.
  sim::NativeRunner runner(0.015, 2);
  core::Study study(runner, core::StudyOptions{.repetitions = 2});
  const auto plan = sweep::StudyPlan::mini_plan(/*apps_per_arch=*/1,
                                                /*configs_per_setting=*/8);
  const core::StudyResult result = study.run(plan);
  EXPECT_EQ(result.dataset.size(), 3u * 8u);
  EXPECT_EQ(result.upshot.size(), 3u);
  EXPECT_FALSE(result.worst_trends.empty());
}

}  // namespace
}  // namespace omptune
