// Fault-tolerance tests: write-ahead journaling with resume equivalence,
// retry/timeout/quarantine behaviour under deterministic fault injection,
// and the kill-at-every-checkpoint torture loop. The core guarantee under
// test: a study interrupted at ANY journal boundary and resumed produces a
// dataset byte-identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/study.hpp"
#include "sim/executor.hpp"
#include "sim/fault_runner.hpp"
#include "sweep/harness.hpp"
#include "sweep/journal.hpp"
#include "sweep/resilience.hpp"
#include "sweep/sharding.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace omptune::sweep {
namespace {

using arch::ArchId;
using arch::architecture;

/// Unique scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("omptune_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string canonical_csv(const Dataset& dataset) {
  std::ostringstream os;
  dataset.to_csv().write(os);
  return os.str();
}

StudyPlan small_plan() { return StudyPlan::mini_plan(2, 12); }

// ---- util::fs ---------------------------------------------------------------

TEST(AtomicWrite, ReplacesContentAtomically) {
  ScratchDir dir("atomic");
  util::create_directories(dir.path());
  const std::string file = util::path_join(dir.path(), "x.txt");
  util::atomic_write_file(file, "first");
  EXPECT_EQ(util::read_file(file).value(), "first");
  util::atomic_write_file(file, "second");
  EXPECT_EQ(util::read_file(file).value(), "second");
  // No temp droppings left behind.
  EXPECT_EQ(util::list_files(dir.path()).size(), 1u);
}

TEST(AtomicWrite, MissingFileReadsAsNullopt) {
  ScratchDir dir("missing");
  util::create_directories(dir.path());
  EXPECT_FALSE(util::read_file(util::path_join(dir.path(), "nope")).has_value());
}

// ---- journal ----------------------------------------------------------------

TEST(StudyJournal, RecordLoadRoundTrip) {
  ScratchDir dir("journal_rt");
  StudyJournal journal(dir.path());

  sim::ModelRunner runner;
  SweepHarness harness(runner, 2, 7);
  const auto& cpu = architecture(ArchId::Milan);
  StudySetting setting{&apps::find_application("xsbench"),
                       apps::find_application("xsbench").default_input(), 48};
  const Dataset batch = harness.run_setting(cpu, setting, 25);

  const std::string key = setting_key(cpu.name, setting);
  EXPECT_FALSE(journal.contains(key));
  journal.record(key, batch);
  EXPECT_TRUE(journal.contains(key));

  const Dataset loaded = journal.load(key, 25);
  EXPECT_EQ(canonical_csv(loaded), canonical_csv(batch));

  journal.discard(key);
  EXPECT_FALSE(journal.contains(key));
}

TEST(StudyJournal, LoadRejectsWrongSampleCount) {
  ScratchDir dir("journal_count");
  StudyJournal journal(dir.path());
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2, 7);
  const auto& cpu = architecture(ArchId::A64FX);
  StudySetting setting{&apps::find_application("cg"),
                       apps::find_application("cg").input_sizes().front(), 0};
  journal.record("k", harness.run_setting(cpu, setting, 10));
  EXPECT_NO_THROW(journal.load("k", 10));
  EXPECT_THROW(journal.load("k", 11), util::DataCorruptionError);
  EXPECT_THROW(journal.load("absent"), util::DataCorruptionError);
}

TEST(StudyJournal, GarbledEntryRaisesDataCorruption) {
  ScratchDir dir("journal_garbled");
  StudyJournal journal(dir.path());
  sim::ModelRunner runner;
  SweepHarness harness(runner, 2, 7);
  const auto& cpu = architecture(ArchId::Skylake);
  StudySetting setting{&apps::find_application("bt"),
                       apps::find_application("bt").input_sizes().front(), 0};
  journal.record("k", harness.run_setting(cpu, setting, 8));

  // Truncate mid-row: the loader must refuse, not return fewer samples.
  const std::string path = journal.entry_path("k");
  const std::string full = util::read_file(path).value();
  util::atomic_write_file(path, full.substr(0, full.size() * 2 / 3));
  EXPECT_THROW(journal.load("k", 8), util::DataCorruptionError);
}

// ---- resilience policy ------------------------------------------------------

ResilienceOptions fast_options(int retries = 3) {
  ResilienceOptions options;
  options.max_retries = retries;
  options.backoff_base_ms = 0;  // no sleeping in tests
  return options;
}

TEST(ResiliencePolicy, RetriesTransientCrashesAndMarksRetried) {
  sim::ModelRunner inner;
  sim::FaultSpec spec;
  spec.seed = 42;
  spec.crash_rate = 0.5;  // heavy, but retries draw fresh values
  sim::FaultInjectingRunner runner(inner, spec);

  ResiliencePolicy policy(fast_options(6));
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  const rt::RtConfig config = rt::RtConfig::defaults_for(cpu);

  int retried = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const MeasureOutcome outcome =
        policy.measure(runner, app, app.default_input(), cpu, config, 1, 0, i);
    ASSERT_NE(outcome.status, SampleStatus::Quarantined) << i;
    EXPECT_GT(outcome.runtime, 0.0);
    if (outcome.status == SampleStatus::Retried) ++retried;
  }
  EXPECT_GT(retried, 0);
  EXPECT_GT(policy.total_retries(), 0u);
}

TEST(ResiliencePolicy, NanRuntimesAreRetriedThenQuarantined) {
  sim::ModelRunner inner;
  sim::FaultSpec spec;
  spec.seed = 7;
  spec.nan_rate = 1.0;
  spec.sticky = true;  // every attempt fails -> must quarantine
  sim::FaultInjectingRunner runner(inner, spec);

  ResiliencePolicy policy(fast_options(2));
  const auto& cpu = architecture(ArchId::Skylake);
  const auto& app = apps::find_application("cg");
  const rt::RtConfig config = rt::RtConfig::defaults_for(cpu);

  const MeasureOutcome outcome =
      policy.measure(runner, app, app.default_input(), cpu, config, 1, 0, 0);
  EXPECT_EQ(outcome.status, SampleStatus::Quarantined);
  EXPECT_EQ(outcome.attempts, 3);  // 1 try + 2 retries
  EXPECT_FALSE(outcome.error.empty());

  // The triple is now on the quarantine list: same config fails fast.
  const MeasureOutcome again =
      policy.measure(runner, app, app.default_input(), cpu, config, 1, 1, 0);
  EXPECT_EQ(again.status, SampleStatus::Quarantined);
  EXPECT_EQ(again.attempts, 0);
}

TEST(ResiliencePolicy, WatchdogConvertsHangsIntoTimeouts) {
  sim::ModelRunner inner;
  sim::FaultSpec spec;
  spec.seed = 3;
  spec.hang_rate = 1.0;
  spec.hang_ms = 200;
  spec.sticky = true;
  sim::FaultInjectingRunner runner(inner, spec);

  ResilienceOptions options = fast_options(1);
  options.sample_timeout_ms = 25;
  ResiliencePolicy policy(options);
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("lulesh");

  const MeasureOutcome outcome =
      policy.measure(runner, app, app.default_input(), cpu,
                     rt::RtConfig::defaults_for(cpu), 2, 0, 0);
  EXPECT_EQ(outcome.status, SampleStatus::Quarantined);
  EXPECT_NE(outcome.error.find("deadline"), std::string::npos) << outcome.error;
}

TEST(ResiliencePolicy, StudyAbortAlwaysEscapes) {
  sim::ModelRunner inner;
  sim::FaultSpec spec;
  spec.kill_after_runs = 1;
  sim::FaultInjectingRunner runner(inner, spec);
  ResiliencePolicy policy(fast_options(5));
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  EXPECT_THROW(policy.measure(runner, app, app.default_input(), cpu,
                              rt::RtConfig::defaults_for(cpu), 1, 0, 0),
               util::StudyAbort);
}

// ---- harness under faults ---------------------------------------------------

TEST(ResilientStudy, CompletesUnderInjectedFaultsWithQuarantine) {
  sim::ModelRunner inner;
  sim::FaultSpec spec;
  spec.seed = 11;
  spec.crash_rate = 0.02;
  spec.nan_rate = 0.01;
  spec.negative_rate = 0.01;
  spec.sticky = true;  // some samples fail on every attempt -> quarantine
  sim::FaultInjectingRunner runner(inner, spec);

  SweepHarness harness(runner, 2, 5);
  StudyRunOptions options;
  options.resilient = true;
  options.resilience = fast_options(2);

  Dataset dataset;
  ASSERT_NO_THROW(dataset = harness.run_study(small_plan(), options));
  EXPECT_EQ(dataset.size(), 3u * 2u * 12u);  // every planned sample recorded
  EXPECT_GT(dataset.quarantined_count(), 0u);
  EXPECT_LT(dataset.quarantined_count(), dataset.size());
  ASSERT_NE(harness.last_policy(), nullptr);
  EXPECT_FALSE(harness.last_policy()->quarantined().empty());

  // Quarantined samples are flagged, carry placeholder values, and survive
  // a CSV round trip.
  for (const Sample& s : dataset.samples()) {
    if (s.is_quarantined()) {
      EXPECT_EQ(s.mean_runtime, 0.0);
      EXPECT_EQ(s.speedup, 0.0);
      EXPECT_FALSE(s.error.empty());
    } else {
      EXPECT_GT(s.mean_runtime, 0.0);
    }
  }
  std::ostringstream os;
  dataset.to_csv().write(os);
  std::istringstream is(os.str());
  const Dataset parsed = Dataset::from_csv(util::CsvTable::read(is));
  EXPECT_EQ(parsed.quarantined_count(), dataset.quarantined_count());

  // Downstream analysis skips quarantined rows without crashing.
  sim::ModelRunner analysis_runner;
  core::Study study(analysis_runner);
  const core::StudyResult result = study.analyze(dataset);
  for (const auto& upshot : result.upshot) {
    EXPECT_GT(upshot.min_best, 0.0) << upshot.arch;
  }
}

TEST(ResilientStudy, FaultFreeResilientRunMatchesBareRun) {
  StudyPlan plan = small_plan();
  sim::ModelRunner runner_a, runner_b;
  SweepHarness bare(runner_a, 2, 5), resilient(runner_b, 2, 5);
  StudyRunOptions options;
  options.resilient = true;
  options.resilience = fast_options(3);
  EXPECT_EQ(canonical_csv(bare.run_study(plan)),
            canonical_csv(resilient.run_study(plan, options)));
}

// ---- resume equivalence -----------------------------------------------------

/// Run the plan with a journal, killing the process (simulated) after
/// `kill_after` successful runner calls; then resume to completion and
/// return the final dataset.
Dataset run_killed_then_resumed(const StudyPlan& plan, std::uint64_t kill_after,
                                const std::string& journal_dir, int reps,
                                std::uint64_t seed) {
  StudyRunOptions options;
  options.journal_dir = journal_dir;
  options.resume = true;
  options.resilient = true;
  options.resilience.max_retries = 1;

  {
    sim::ModelRunner inner;
    sim::FaultSpec spec;
    spec.kill_after_runs = kill_after;
    sim::FaultInjectingRunner runner(inner, spec);
    SweepHarness harness(runner, reps, seed);
    EXPECT_THROW(harness.run_study(plan, options), util::StudyAbort);
  }
  // "New process": fresh runner and harness, same journal.
  sim::ModelRunner runner;
  SweepHarness harness(runner, reps, seed);
  return harness.run_study(plan, options);
}

TEST(ResumableStudy, ResumeAfterEveryCheckpointIsByteIdentical) {
  const StudyPlan plan = small_plan();
  sim::ModelRunner reference_runner;
  SweepHarness reference(reference_runner, 2, 5);
  const std::string expected = canonical_csv(reference.run_study(plan));

  // Samples per setting = 12 configs x 2 reps; kill right after each
  // setting boundary (and mid-setting for good measure).
  const std::uint64_t per_setting = 12 * 2;
  std::size_t checkpoint = 0;
  for (const std::uint64_t kill :
       {per_setting, per_setting + 5, 2 * per_setting, 3 * per_setting + 1,
        5 * per_setting, 6 * per_setting - 1}) {
    ScratchDir dir("resume_" + std::to_string(checkpoint++));
    const Dataset resumed =
        run_killed_then_resumed(plan, kill, dir.path(), 2, 5);
    EXPECT_EQ(canonical_csv(resumed), expected) << "kill after " << kill;
  }
}

TEST(ResumableStudy, ShardedPlanResumesByteIdentical) {
  const StudyPlan plan = StudyPlan::mini_plan(3, 8);
  const StudyPlan shard = shard_plan(plan, 1, 2);

  sim::ModelRunner reference_runner;
  SweepHarness reference(reference_runner, 2, 9);
  const std::string expected = canonical_csv(reference.run_study(shard));

  ScratchDir dir("resume_shard");
  const Dataset resumed =
      run_killed_then_resumed(shard, 8 * 2 + 3, dir.path(), 2, 9);
  EXPECT_EQ(canonical_csv(resumed), expected);
}

TEST(ResumableStudy, ResumeSkipsCompletedSettings) {
  const StudyPlan plan = small_plan();
  ScratchDir dir("resume_skip");

  StudyRunOptions options;
  options.journal_dir = dir.path();
  options.resume = true;
  options.resilient = true;

  sim::ModelRunner runner_a;
  SweepHarness first(runner_a, 2, 5);
  const Dataset original = first.run_study(plan, options);

  // Re-running resumes every setting from the journal: zero runner calls.
  sim::ModelRunner inner;
  sim::FaultSpec spec;  // no faults
  sim::FaultInjectingRunner counting(inner, spec);
  SweepHarness second(counting, 2, 5);
  const Dataset replayed = second.run_study(plan, options);
  EXPECT_EQ(counting.completed_runs(), 0u);
  EXPECT_EQ(canonical_csv(replayed), canonical_csv(original));
}

TEST(ResumableStudy, CorruptJournalEntryIsRecollected) {
  const StudyPlan plan = small_plan();
  ScratchDir dir("resume_corrupt");

  StudyRunOptions options;
  options.journal_dir = dir.path();
  options.resume = true;
  options.resilient = true;

  sim::ModelRunner runner;
  SweepHarness harness(runner, 2, 5);
  const std::string expected = canonical_csv(harness.run_study(plan, options));

  // Garble one journal entry; the resumed study must detect it, recollect
  // that setting, and still produce the identical dataset.
  StudyJournal journal(dir.path());
  const auto& cpu = architecture(plan.arch_plans[0].arch);
  const std::string key =
      setting_key(cpu.name, plan.arch_plans[0].settings[0]);
  ASSERT_TRUE(journal.contains(key));
  util::atomic_write_file(journal.entry_path(key), "arch,app\ngarbage");

  sim::ModelRunner runner2;
  SweepHarness harness2(runner2, 2, 5);
  EXPECT_EQ(canonical_csv(harness2.run_study(plan, options)), expected);
}

// ---- merge of quarantined shards -------------------------------------------

TEST(MergeShards, SurfacesQuarantinedSettingsInsteadOfDropping) {
  const StudyPlan plan = StudyPlan::mini_plan(2, 6);

  std::vector<Dataset> shard_data;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ModelRunner inner;
    sim::FaultSpec spec;
    spec.seed = 21;
    spec.nan_rate = i == 0 ? 0.05 : 0.0;  // shard 0 is flaky
    spec.sticky = true;
    sim::FaultInjectingRunner runner(inner, spec);
    SweepHarness harness(runner, 2, 5);
    StudyRunOptions options;
    options.resilient = true;
    options.resilience.max_retries = 1;
    shard_data.push_back(harness.run_study(shard_plan(plan, i, 2), options));
  }
  const std::size_t quarantined_in =
      shard_data[0].quarantined_count() + shard_data[1].quarantined_count();
  ASSERT_GT(quarantined_in, 0u);

  MergeReport report;
  const Dataset merged = merge_shards(plan, shard_data, &report);
  EXPECT_EQ(merged.size(), 3u * 2u * 6u);
  EXPECT_EQ(merged.quarantined_count(), quarantined_in);
  EXPECT_EQ(report.quarantined_samples, quarantined_in);
  EXPECT_FALSE(report.quarantined_settings.empty());
  for (const auto& entry : report.quarantined_settings) {
    EXPECT_GT(entry.quarantined, 0u);
    EXPECT_LE(entry.quarantined, entry.total);
  }
}

}  // namespace
}  // namespace omptune::sweep
