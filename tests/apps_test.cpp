// Application kernel validation: every benchmark's parallel implementation
// must reproduce its serial reference checksum, across schedules and
// reduction methods; registry metadata must match the paper's app roster.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/all_apps.hpp"
#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/thread_team.hpp"

namespace omptune::apps {
namespace {

using arch::ArchId;
using arch::architecture;

// Tiny problems: this suite verifies correctness, not performance.
constexpr double kNativeScale = 0.03;

rt::RtConfig test_config(int threads) {
  rt::RtConfig config = rt::RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = threads;
  config.blocktime_ms = 0;
  return config;
}

void expect_checksum_match(const Application& app, double native, double reference) {
  if (app.deterministic_checksum()) {
    EXPECT_DOUBLE_EQ(native, reference) << app.name();
  } else {
    const double tol = 1e-9 * std::max(1.0, std::abs(reference));
    EXPECT_NEAR(native, reference, tol) << app.name();
  }
}

TEST(Registry, HasAllFifteenStudyApplications) {
  const auto& apps = registry();
  ASSERT_EQ(apps.size(), 15u);
  const std::set<std::string> expected = {
      "alignment", "bt",      "cg",       "ep",   "ft",
      "health",    "lu",      "lulesh",   "mg",   "nqueens",
      "rsbench",   "sort",    "strassen", "su3bench", "xsbench"};
  std::set<std::string> actual;
  for (const Application* app : apps) actual.insert(app->name());
  EXPECT_EQ(actual, expected);
}

TEST(Registry, SuitesAndKindsMatchThePaper) {
  const std::set<std::string> npb = {"bt", "cg", "ep", "ft", "lu", "mg"};
  const std::set<std::string> bots = {"alignment", "health", "nqueens", "sort",
                                      "strassen"};
  for (const Application* app : registry()) {
    if (npb.count(app->name()) != 0) {
      EXPECT_EQ(app->suite(), "npb") << app->name();
      EXPECT_EQ(app->kind(), ParallelismKind::Loop) << app->name();
      EXPECT_EQ(app->sweep_mode(), SweepMode::VaryInputSize) << app->name();
    } else if (bots.count(app->name()) != 0) {
      EXPECT_EQ(app->suite(), "bots") << app->name();
      EXPECT_EQ(app->kind(), ParallelismKind::Task) << app->name();
      EXPECT_EQ(app->sweep_mode(), SweepMode::VaryInputSize) << app->name();
    } else {
      EXPECT_EQ(app->suite(), "proxy") << app->name();
      EXPECT_EQ(app->kind(), ParallelismKind::Loop) << app->name();
      EXPECT_EQ(app->sweep_mode(), SweepMode::VaryThreads) << app->name();
    }
  }
}

TEST(Registry, FindByNameAndUnknownName) {
  EXPECT_EQ(find_application("cg").name(), "cg");
  EXPECT_THROW(find_application("hpl"), std::invalid_argument);
}

TEST(Registry, CharacteristicsAreWithinDomain) {
  for (const Application* app : registry()) {
    for (const InputSize& input : app->input_sizes()) {
      const AppCharacteristics c = app->characteristics(input);
      EXPECT_GT(c.base_seconds, 0.0) << app->name();
      EXPECT_GE(c.serial_fraction, 0.0) << app->name();
      EXPECT_LT(c.serial_fraction, 0.5) << app->name();
      EXPECT_GE(c.mem_intensity, 0.0) << app->name();
      EXPECT_LE(c.mem_intensity, 1.0) << app->name();
      EXPECT_GE(c.numa_sensitivity, 0.0) << app->name();
      EXPECT_LE(c.numa_sensitivity, 1.0) << app->name();
      EXPECT_GE(c.load_imbalance, 0.0) << app->name();
      EXPECT_GE(c.region_rate, 0.0) << app->name();
      EXPECT_GE(c.working_set_mb, 0.0) << app->name();
      if (app->kind() == ParallelismKind::Task) {
        EXPECT_GT(c.task_granularity_us, 0.0) << app->name();
      }
    }
  }
}

TEST(Registry, InputSizesAreOrderedAndNamed) {
  for (const Application* app : registry()) {
    const auto sizes = app->input_sizes();
    ASSERT_GE(sizes.size(), 2u) << app->name();
    for (std::size_t i = 1; i < sizes.size(); ++i) {
      EXPECT_LT(sizes[i - 1].scale, sizes[i].scale) << app->name();
      EXPECT_FALSE(sizes[i].name.empty()) << app->name();
    }
    EXPECT_FALSE(app->default_input().name.empty());
  }
}

// ---- Native-vs-reference validation over the whole roster ----------------

class AppCorrectness : public ::testing::TestWithParam<const Application*> {};

TEST_P(AppCorrectness, SmallestInputMatchesReferenceWith3Threads) {
  const Application& app = *GetParam();
  const InputSize input = app.input_sizes().front();
  const double reference = app.run_reference(input, kNativeScale);
  rt::ThreadTeam team(architecture(ArchId::Skylake), test_config(3));
  const double native = app.run_native(team, input, kNativeScale);
  expect_checksum_match(app, native, reference);
}

TEST_P(AppCorrectness, SingleThreadMatchesReference) {
  const Application& app = *GetParam();
  const InputSize input = app.input_sizes().front();
  const double reference = app.run_reference(input, kNativeScale);
  rt::ThreadTeam team(architecture(ArchId::Skylake), test_config(1));
  const double native = app.run_native(team, input, kNativeScale);
  expect_checksum_match(app, native, reference);
}

TEST_P(AppCorrectness, DynamicScheduleAndAtomicReductionMatchReference) {
  const Application& app = *GetParam();
  const InputSize input = app.input_sizes().front();
  const double reference = app.run_reference(input, kNativeScale);
  rt::RtConfig config = test_config(4);
  config.schedule = rt::ScheduleKind::Dynamic;
  config.chunk = 2;
  config.reduction = rt::ReductionMethod::Atomic;
  rt::ThreadTeam team(architecture(ArchId::Skylake), config);
  const double native = app.run_native(team, input, kNativeScale);
  // Atomic reductions commute for Min/Max but reassociate sums: always use
  // the tolerant comparison here.
  const double tol = 1e-9 * std::max(1.0, std::abs(reference));
  if (app.deterministic_checksum()) {
    EXPECT_DOUBLE_EQ(native, reference) << app.name();
  } else {
    EXPECT_NEAR(native, reference, tol) << app.name();
  }
}

TEST_P(AppCorrectness, TurnaroundGuidedMatchesReference) {
  const Application& app = *GetParam();
  const InputSize input = app.input_sizes().front();
  const double reference = app.run_reference(input, kNativeScale);
  rt::RtConfig config = test_config(2);
  config.schedule = rt::ScheduleKind::Guided;
  config.library = rt::LibraryMode::Turnaround;
  rt::ThreadTeam team(architecture(ArchId::Skylake), config);
  const double native = app.run_native(team, input, kNativeScale);
  expect_checksum_match(app, native, reference);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         ::testing::ValuesIn(registry()),
                         [](const auto& info) { return info.param->name(); });

TEST(AppCorrectness, LargerInputStillMatches) {
  // One heavier sanity point on a representative pair (loop + task).
  for (const std::string name : {"cg", "nqueens"}) {
    const Application& app = find_application(name);
    const InputSize input = app.input_sizes().back();
    const double reference = app.run_reference(input, kNativeScale);
    rt::ThreadTeam team(architecture(ArchId::Skylake), test_config(4));
    const double native = app.run_native(team, input, kNativeScale);
    if (app.deterministic_checksum()) {
      EXPECT_DOUBLE_EQ(native, reference) << name;
    } else {
      EXPECT_NEAR(native, reference, 1e-9 * std::max(1.0, std::abs(reference)))
          << name;
    }
  }
}

}  // namespace
}  // namespace omptune::apps
