// Property/fuzz tests over randomized inputs: configuration round trips
// through the process environment, random task trees against serial
// reference counts, random loop bounds through every scheduler, and random
// datasets through the analysis plumbing. Every case is seeded, so
// failures reproduce deterministically.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <functional>
#include <sstream>

#include "analysis/speedup.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/schedule.hpp"
#include "rt/thread_team.hpp"
#include "serve/wire.hpp"
#include "sim/executor.hpp"
#include "sweep/config_space.hpp"
#include "sweep/harness.hpp"
#include "sim/storage_chaos.hpp"
#include "sweep/journal.hpp"
#include "sweep/lease.hpp"
#include "util/env.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/io_hooks.hpp"
#include "util/rng.hpp"

namespace omptune {
namespace {

using arch::ArchId;
using arch::architecture;

rt::RtConfig random_config(util::Xoshiro256& rng, const arch::CpuArch& cpu) {
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  rt::RtConfig config;
  config.num_threads = 1 + static_cast<int>(rng.uniform_index(8));
  config.places = space.places[rng.uniform_index(space.places.size())];
  config.bind = space.binds[rng.uniform_index(space.binds.size())];
  config.schedule = space.schedules[rng.uniform_index(space.schedules.size())];
  config.chunk = static_cast<int>(rng.uniform_index(4)) * 3;  // 0,3,6,9
  config.library = space.libraries[rng.uniform_index(space.libraries.size())];
  config.blocktime_ms = space.blocktimes_ms[rng.uniform_index(space.blocktimes_ms.size())];
  config.reduction = space.reductions[rng.uniform_index(space.reductions.size())];
  config.align_alloc = space.aligns[rng.uniform_index(space.aligns.size())];
  return config;
}

class ConfigEnvFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConfigEnvFuzz, RandomConfigsRoundTripThroughTheEnvironment) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3);
  const auto& cpu = architecture(ArchId::Milan);
  for (int i = 0; i < 25; ++i) {
    const rt::RtConfig original = random_config(rng, cpu);
    const util::ScopedEnv env(original.to_env(cpu));
    const rt::RtConfig parsed = rt::RtConfig::from_env(cpu);
    EXPECT_EQ(parsed, original) << original.key();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigEnvFuzz, ::testing::Range(0, 8));

class ScheduleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFuzz, RandomBoundsAlwaysPartitionExactly) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 1);
  for (int i = 0; i < 40; ++i) {
    const auto kind = static_cast<rt::ScheduleKind>(rng.uniform_index(4));
    const int chunk = static_cast<int>(rng.uniform_index(20));
    const auto lo = static_cast<std::int64_t>(rng.uniform_index(1000)) - 500;
    const auto len = static_cast<std::int64_t>(rng.uniform_index(3000));
    const int team = 1 + static_cast<int>(rng.uniform_index(7));

    rt::LoopScheduler sched(kind, chunk, lo, lo + len, team);
    std::int64_t covered = 0;
    std::int64_t min_seen = lo + len, max_seen = lo;
    for (int t = 0; t < team; ++t) {
      while (const auto slice = sched.next(t)) {
        covered += slice->size();
        min_seen = std::min(min_seen, slice->begin);
        max_seen = std::max(max_seen, slice->end);
      }
    }
    ASSERT_EQ(covered, len) << "kind=" << static_cast<int>(kind)
                            << " chunk=" << chunk << " lo=" << lo
                            << " len=" << len << " team=" << team;
    if (len > 0) {
      ASSERT_EQ(min_seen, lo);
      ASSERT_EQ(max_seen, lo + len);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range(0, 8));

// ---- random task trees ------------------------------------------------------

/// Deterministic irregular tree: child count derived from the node id.
int children_of(std::uint64_t node, std::uint64_t seed, int depth) {
  if (depth >= 6) return 0;
  return static_cast<int>(util::hash_combine(seed, node) % 4u);  // 0..3
}

long count_serial(std::uint64_t node, std::uint64_t seed, int depth) {
  long total = 1;
  const int kids = children_of(node, seed, depth);
  for (int k = 0; k < kids; ++k) {
    total += count_serial(node * 4 + 1 + static_cast<std::uint64_t>(k), seed, depth + 1);
  }
  return total;
}

void count_tasks(rt::TeamContext& ctx, std::uint64_t node, std::uint64_t seed,
                 int depth, std::atomic<long>& total) {
  total.fetch_add(1, std::memory_order_relaxed);
  const int kids = children_of(node, seed, depth);
  for (int k = 0; k < kids; ++k) {
    const std::uint64_t child = node * 4 + 1 + static_cast<std::uint64_t>(k);
    ctx.spawn([&ctx, child, seed, depth, &total] {
      count_tasks(ctx, child, seed, depth + 1, total);
    });
  }
  if (kids > 0) ctx.taskwait();
}

class TaskTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TaskTreeFuzz, RandomTreesVisitEveryNodeExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17;
  const long expected = count_serial(0, seed, 0);

  rt::RtConfig config = rt::RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = 3;
  config.blocktime_ms = 0;
  rt::ThreadTeam team(architecture(ArchId::Skylake), config);
  std::atomic<long> total{0};
  team.parallel([&](rt::TeamContext& ctx) {
    ctx.run_task_root([&ctx, seed, &total] { count_tasks(ctx, 0, seed, 0, total); });
  });
  EXPECT_EQ(total.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskTreeFuzz, ::testing::Range(0, 10));

// ---- random datasets through the analysis plumbing -------------------------

TEST(DatasetFuzz, BestPerSettingInvariantsOnRandomData) {
  util::Xoshiro256 rng(99);
  sweep::Dataset dataset;
  const char* archs[] = {"a64fx", "milan", "skylake"};
  const char* apps[] = {"cg", "mg", "nqueens"};
  for (int i = 0; i < 2000; ++i) {
    sweep::Sample s;
    s.arch = archs[rng.uniform_index(3)];
    s.app = apps[rng.uniform_index(3)];
    s.input = rng.uniform() < 0.5 ? "small" : "large";
    s.threads = 8;
    s.mean_runtime = rng.uniform(0.1, 10.0);
    s.default_runtime = 1.0;
    s.speedup = s.default_runtime / s.mean_runtime;
    dataset.add(s);
  }
  const auto bests = analysis::best_per_setting(dataset);
  EXPECT_LE(bests.size(), 18u);  // 3 archs x 3 apps x 2 inputs
  for (const auto& b : bests) {
    // The reported best config must actually attain the best speedup.
    double max_speedup = 0.0;
    for (const auto& s : dataset.samples()) {
      if (s.arch == b.arch && s.app == b.app && s.input == b.input) {
        max_speedup = std::max(max_speedup, s.speedup);
      }
    }
    EXPECT_DOUBLE_EQ(b.best_speedup, max_speedup);
  }
}

// ---- wire protocol fuzz -----------------------------------------------------
//
// The serving wire decoder faces bytes from the network, including bytes a
// chaos proxy garbled mid-frame. Whatever arrives, the contract is: parse,
// or throw serve::WireError — never crash, never hang, never read past the
// payload.

class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, RandomPayloadsDecodeOrThrowTypedWireError) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7127u + 5);
  for (int i = 0; i < 400; ++i) {
    std::string payload;
    const std::size_t len = rng.uniform_index(96);
    for (std::size_t b = 0; b < len; ++b) {
      payload += static_cast<char>(rng.uniform_index(256));
    }
    try {
      (void)serve::decode_request(payload);
    } catch (const serve::WireError&) {
      // the only acceptable failure mode
    }
    try {
      (void)serve::decode_response(payload);
    } catch (const serve::WireError&) {
    }
  }
}

TEST_P(WireFuzz, MutatedValidFramesNeverEscapeTheTaxonomy) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 9473u + 11);

  serve::Response pristine;
  pristine.type = serve::MsgType::RecommendReply;
  pristine.generation = 3;
  pristine.found = true;
  pristine.speedup = 1.4;
  pristine.config_key = "OMP_PLACES=cores OMP_PROC_BIND=close";
  pristine.variable_priority = {"OMP_PLACES", "KMP_BLOCKTIME"};
  std::string frame;
  serve::encode_response(frame, pristine);

  for (int i = 0; i < 300; ++i) {
    std::string mutated = frame;
    if (rng.uniform() < 0.5) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));  // truncation
    } else {
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] = static_cast<char>(rng.uniform_index(256));  // garble
    }
    // frame_size: returns the frame length, 0 (incomplete), or throws on a
    // declared length past the cap — crucially BEFORE anything allocates.
    std::size_t total = 0;
    try {
      total = serve::frame_size(mutated);
    } catch (const serve::WireError&) {
      continue;
    }
    if (total == 0 || mutated.size() < total) continue;  // would block on recv
    try {
      (void)serve::decode_response(std::string_view(mutated).substr(4, total - 4));
    } catch (const serve::WireError&) {
      // typed rejection, connection would be abandoned — fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(0, 6));

// ---- journal / dataset CSV corruption fuzz ---------------------------------

/// A crash mid-append can leave a journal entry truncated at any byte, or
/// (disk/firmware faults) with garbled bytes. Loading such an entry must
/// either succeed with ALL samples intact or throw the taxonomy's
/// data-corruption error — never UB, never a silently shorter dataset.
class JournalCorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JournalCorruptionFuzz, TruncatedOrGarbledEntriesNeverLoseSamplesSilently) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 6151u + 13);

  // One pristine journal entry to mutilate.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_fuzz_journal_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam())))
          .string();
  std::filesystem::remove_all(dir);
  sweep::StudyJournal journal(dir);
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 3);
  const auto& cpu = architecture(ArchId::Milan);
  sweep::StudySetting setting{&apps::find_application("xsbench"),
                              apps::find_application("xsbench").default_input(),
                              48};
  const std::size_t count = 15;
  journal.record("fuzz", harness.run_setting(cpu, setting, count));
  const std::string pristine = util::read_file(journal.entry_path("fuzz")).value();

  for (int i = 0; i < 40; ++i) {
    std::string mutated = pristine;
    if (rng.uniform() < 0.5) {
      // Truncate at a random byte (crash mid-append).
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    } else {
      // Garble a random run of bytes.
      const std::size_t at = rng.uniform_index(mutated.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.uniform_index(24), mutated.size() - at);
      for (std::size_t b = 0; b < len; ++b) {
        mutated[at + b] = static_cast<char>(rng.uniform_index(256));
      }
    }
    util::atomic_write_file(journal.entry_path("fuzz"), mutated);
    try {
      const sweep::Dataset loaded = journal.load("fuzz", count);
      // Success is only acceptable with every sample present and finite.
      ASSERT_EQ(loaded.size(), count);
      for (const auto& s : loaded.samples()) {
        ASSERT_TRUE(std::isfinite(s.mean_runtime));
        ASSERT_TRUE(std::isfinite(s.speedup));
      }
    } catch (const util::DataCorruptionError&) {
      // The only acceptable failure mode.
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalCorruptionFuzz, ::testing::Range(0, 4));

/// At-rest bit rot on the READ path, injected through the fs hook seam
/// (sim::StorageChaos::after_read flips one deterministic byte per file):
/// every consumer of util::read_file must either absorb the flip with all
/// data intact or fail inside the error taxonomy — never crash, never lose
/// rows silently.
class ReadPathBitRotFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ReadPathBitRotFuzz, JournalLoadsAreTypedOrIntactUnderBitRot) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_fuzz_bitrot_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam())))
          .string();
  std::filesystem::remove_all(dir);
  sweep::StudyJournal journal(dir);
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 3);
  const auto& cpu = architecture(ArchId::Milan);
  sweep::StudySetting setting{&apps::find_application("xsbench"),
                              apps::find_application("xsbench").default_input(),
                              48};
  const std::size_t count = 15;
  journal.record("fuzz", harness.run_setting(cpu, setting, count));

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::StorageFaultPlan plan;
    plan.bitrot_seed = seed * 1000003u + static_cast<std::uint64_t>(GetParam());
    sim::StorageChaos chaos(plan);
    util::ScopedIoHooks scope(&chaos);
    try {
      const sweep::Dataset loaded = journal.load("fuzz", count);
      // A flip in a value field can parse to a different number; what it
      // must never do is change the row count or produce non-finite data
      // without a typed error.
      ASSERT_EQ(loaded.size(), count);
    } catch (const util::DataCorruptionError&) {
      // Typed rejection: the expected outcome for structural damage.
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_P(ReadPathBitRotFuzz, LeaseTableStateParsesOrRejectsTypedUnderBitRot) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_fuzz_lease_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string state = util::path_join(dir, "coordinator.state");

  sweep::LeaseTable table(6);
  table.at(0).state = sweep::ShardState::Completed;
  table.at(1).state = sweep::ShardState::Quarantined;
  table.at(1).attempts = 3;
  table.at(1).evidence = "host crashed repeatedly";
  table.at(2).state = sweep::ShardState::Leased;
  table.at(2).holder = 1;
  util::atomic_write_file(state, table.serialize());

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::StorageFaultPlan plan;
    plan.bitrot_seed = seed * 777767u + static_cast<std::uint64_t>(GetParam());
    sim::StorageChaos chaos(plan);
    util::ScopedIoHooks scope(&chaos);
    const std::optional<std::string> text = util::read_file(state);
    ASSERT_TRUE(text.has_value());
    try {
      const sweep::LeaseTable parsed = sweep::LeaseTable::parse(*text);
      // A flip confined to an evidence string or a digit can still parse;
      // the structure must survive intact when it does.
      ASSERT_EQ(parsed.size(), table.size());
    } catch (const util::DataCorruptionError&) {
      // Typed rejection is the other acceptable outcome.
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadPathBitRotFuzz, ::testing::Range(0, 3));

TEST(DatasetCsvFuzz, RoundTripSurvivesAndCorruptionIsTyped) {
  // Dataset::load_csv_file normalizes every parse failure (bad quoting,
  // short rows, non-numeric cells, non-finite values) to
  // util::DataCorruptionError.
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 2, 3);
  const auto& cpu = architecture(ArchId::A64FX);
  sweep::StudySetting setting{
      &apps::find_application("nqueens"),
      apps::find_application("nqueens").input_sizes().front(), 0};
  const sweep::Dataset dataset = harness.run_setting(cpu, setting, 20);

  std::ostringstream os;
  dataset.to_csv().write(os);
  const std::string text = os.str();

  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("omptune_fuzz_csv_" + std::to_string(::getpid())))
                              .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string path = util::path_join(dir, "d.csv");

  // Pristine file round-trips.
  util::atomic_write_file(path, text);
  EXPECT_EQ(sweep::Dataset::load_csv_file(path).size(), dataset.size());

  util::Xoshiro256 rng(1234);
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    std::string mutated = text;
    const std::size_t at = rng.uniform_index(mutated.size());
    if (rng.uniform() < 0.4) {
      mutated.resize(at);
    } else {
      mutated[at] = static_cast<char>(rng.uniform_index(256));
    }
    util::atomic_write_file(path, mutated);
    try {
      const sweep::Dataset loaded = sweep::Dataset::load_csv_file(path);
      for (const auto& s : loaded.samples()) {
        ASSERT_TRUE(std::isfinite(s.mean_runtime));
      }
    } catch (const util::DataCorruptionError& error) {
      ++rejected;
      // Errors must carry the file name for operator forensics.
      EXPECT_NE(std::string(error.what()).find("d.csv"), std::string::npos);
    }
  }
  EXPECT_GT(rejected, 0);  // mutations do get caught, not absorbed
  std::filesystem::remove_all(dir);
}

TEST(DatasetCsvFuzz, ParseErrorsNameFileAndRow) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("omptune_fuzz_row_" + std::to_string(::getpid())))
                              .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string path = util::path_join(dir, "rows.csv");

  // Row 2 has a bad blocktime; the error must say so, by file and row.
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 1, 3);
  const auto& cpu = architecture(ArchId::Milan);
  sweep::StudySetting setting{&apps::find_application("cg"),
                              apps::find_application("cg").input_sizes().front(),
                              0};
  auto table = harness.run_setting(cpu, setting, 3).to_csv();
  util::CsvTable bad(table.header());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    auto row = table.row(r);
    if (r == 1) row[table.col_index("blocktime")] = "soonish";
    bad.add_row(row);
  }
  std::ostringstream os;
  bad.write(os);
  util::atomic_write_file(path, os.str());

  try {
    sweep::Dataset::load_csv_file(path);
    FAIL() << "expected DataCorruptionError";
  } catch (const util::DataCorruptionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rows.csv"), std::string::npos) << what;
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("soonish"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetCsvFuzz, NonFiniteNumericFieldsAreRejected) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 1, 3);
  const auto& cpu = architecture(ArchId::Milan);
  sweep::StudySetting setting{&apps::find_application("cg"),
                              apps::find_application("cg").input_sizes().front(),
                              0};
  auto table = harness.run_setting(cpu, setting, 2).to_csv();
  for (const char* poison : {"nan", "inf", "-inf"}) {
    util::CsvTable bad(table.header());
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      auto row = table.row(r);
      if (r == 0) row[table.col_index("speedup")] = poison;
      bad.add_row(row);
    }
    try {
      sweep::Dataset::from_csv(bad, "poisoned.csv");
      FAIL() << "expected rejection of speedup=" << poison;
    } catch (const util::DataCorruptionError& error) {
      EXPECT_NE(std::string(error.what()).find("row 1"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace omptune
