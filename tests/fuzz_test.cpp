// Property/fuzz tests over randomized inputs: configuration round trips
// through the process environment, random task trees against serial
// reference counts, random loop bounds through every scheduler, and random
// datasets through the analysis plumbing. Every case is seeded, so
// failures reproduce deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>

#include "analysis/speedup.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/schedule.hpp"
#include "rt/thread_team.hpp"
#include "sweep/config_space.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace omptune {
namespace {

using arch::ArchId;
using arch::architecture;

rt::RtConfig random_config(util::Xoshiro256& rng, const arch::CpuArch& cpu) {
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  rt::RtConfig config;
  config.num_threads = 1 + static_cast<int>(rng.uniform_index(8));
  config.places = space.places[rng.uniform_index(space.places.size())];
  config.bind = space.binds[rng.uniform_index(space.binds.size())];
  config.schedule = space.schedules[rng.uniform_index(space.schedules.size())];
  config.chunk = static_cast<int>(rng.uniform_index(4)) * 3;  // 0,3,6,9
  config.library = space.libraries[rng.uniform_index(space.libraries.size())];
  config.blocktime_ms = space.blocktimes_ms[rng.uniform_index(space.blocktimes_ms.size())];
  config.reduction = space.reductions[rng.uniform_index(space.reductions.size())];
  config.align_alloc = space.aligns[rng.uniform_index(space.aligns.size())];
  return config;
}

class ConfigEnvFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConfigEnvFuzz, RandomConfigsRoundTripThroughTheEnvironment) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3);
  const auto& cpu = architecture(ArchId::Milan);
  for (int i = 0; i < 25; ++i) {
    const rt::RtConfig original = random_config(rng, cpu);
    const util::ScopedEnv env(original.to_env(cpu));
    const rt::RtConfig parsed = rt::RtConfig::from_env(cpu);
    EXPECT_EQ(parsed, original) << original.key();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigEnvFuzz, ::testing::Range(0, 8));

class ScheduleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFuzz, RandomBoundsAlwaysPartitionExactly) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 1);
  for (int i = 0; i < 40; ++i) {
    const auto kind = static_cast<rt::ScheduleKind>(rng.uniform_index(4));
    const int chunk = static_cast<int>(rng.uniform_index(20));
    const auto lo = static_cast<std::int64_t>(rng.uniform_index(1000)) - 500;
    const auto len = static_cast<std::int64_t>(rng.uniform_index(3000));
    const int team = 1 + static_cast<int>(rng.uniform_index(7));

    rt::LoopScheduler sched(kind, chunk, lo, lo + len, team);
    std::int64_t covered = 0;
    std::int64_t min_seen = lo + len, max_seen = lo;
    for (int t = 0; t < team; ++t) {
      while (const auto slice = sched.next(t)) {
        covered += slice->size();
        min_seen = std::min(min_seen, slice->begin);
        max_seen = std::max(max_seen, slice->end);
      }
    }
    ASSERT_EQ(covered, len) << "kind=" << static_cast<int>(kind)
                            << " chunk=" << chunk << " lo=" << lo
                            << " len=" << len << " team=" << team;
    if (len > 0) {
      ASSERT_EQ(min_seen, lo);
      ASSERT_EQ(max_seen, lo + len);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range(0, 8));

// ---- random task trees ------------------------------------------------------

/// Deterministic irregular tree: child count derived from the node id.
int children_of(std::uint64_t node, std::uint64_t seed, int depth) {
  if (depth >= 6) return 0;
  return static_cast<int>(util::hash_combine(seed, node) % 4u);  // 0..3
}

long count_serial(std::uint64_t node, std::uint64_t seed, int depth) {
  long total = 1;
  const int kids = children_of(node, seed, depth);
  for (int k = 0; k < kids; ++k) {
    total += count_serial(node * 4 + 1 + static_cast<std::uint64_t>(k), seed, depth + 1);
  }
  return total;
}

void count_tasks(rt::TeamContext& ctx, std::uint64_t node, std::uint64_t seed,
                 int depth, std::atomic<long>& total) {
  total.fetch_add(1, std::memory_order_relaxed);
  const int kids = children_of(node, seed, depth);
  for (int k = 0; k < kids; ++k) {
    const std::uint64_t child = node * 4 + 1 + static_cast<std::uint64_t>(k);
    ctx.spawn([&ctx, child, seed, depth, &total] {
      count_tasks(ctx, child, seed, depth + 1, total);
    });
  }
  if (kids > 0) ctx.taskwait();
}

class TaskTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TaskTreeFuzz, RandomTreesVisitEveryNodeExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17;
  const long expected = count_serial(0, seed, 0);

  rt::RtConfig config = rt::RtConfig::defaults_for(architecture(ArchId::Skylake));
  config.num_threads = 3;
  config.blocktime_ms = 0;
  rt::ThreadTeam team(architecture(ArchId::Skylake), config);
  std::atomic<long> total{0};
  team.parallel([&](rt::TeamContext& ctx) {
    ctx.run_task_root([&ctx, seed, &total] { count_tasks(ctx, 0, seed, 0, total); });
  });
  EXPECT_EQ(total.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskTreeFuzz, ::testing::Range(0, 10));

// ---- random datasets through the analysis plumbing -------------------------

TEST(DatasetFuzz, BestPerSettingInvariantsOnRandomData) {
  util::Xoshiro256 rng(99);
  sweep::Dataset dataset;
  const char* archs[] = {"a64fx", "milan", "skylake"};
  const char* apps[] = {"cg", "mg", "nqueens"};
  for (int i = 0; i < 2000; ++i) {
    sweep::Sample s;
    s.arch = archs[rng.uniform_index(3)];
    s.app = apps[rng.uniform_index(3)];
    s.input = rng.uniform() < 0.5 ? "small" : "large";
    s.threads = 8;
    s.mean_runtime = rng.uniform(0.1, 10.0);
    s.default_runtime = 1.0;
    s.speedup = s.default_runtime / s.mean_runtime;
    dataset.add(s);
  }
  const auto bests = analysis::best_per_setting(dataset);
  EXPECT_LE(bests.size(), 18u);  // 3 archs x 3 apps x 2 inputs
  for (const auto& b : bests) {
    // The reported best config must actually attain the best speedup.
    double max_speedup = 0.0;
    for (const auto& s : dataset.samples()) {
      if (s.arch == b.arch && s.app == b.app && s.input == b.input) {
        max_speedup = std::max(max_speedup, s.speedup);
      }
    }
    EXPECT_DOUBLE_EQ(b.best_speedup, max_speedup);
  }
}

}  // namespace
}  // namespace omptune
