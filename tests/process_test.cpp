// Unit tests for the supervisor's plumbing: POSIX process/pipe helpers,
// the worker wire protocol (including garbage rejection), the deterministic
// chaos spec, crash-safe filesystem helpers, and the mmap fallback path.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "sim/fault_runner.hpp"
#include "sweep/worker.hpp"
#include "util/fs.hpp"
#include "util/mmap_file.hpp"
#include "util/process.hpp"

namespace omptune {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("omptune_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    util::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- pipes and line assembly ------------------------------------------------

TEST(Process, WriteAllRoundTripsThroughPipe) {
  util::Pipe pipe;
  ASSERT_TRUE(util::write_all(pipe.write_fd, "hello\nworld\n"));
  pipe.close_write();
  util::set_nonblocking(pipe.read_fd);
  util::LineReader reader(pipe.read_fd);
  const std::vector<std::string> lines = reader.drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "world");
  EXPECT_TRUE(reader.eof());
  EXPECT_FALSE(reader.garbled());
}

TEST(Process, LineReaderAssemblesSplitWrites) {
  util::Pipe pipe;
  util::set_nonblocking(pipe.read_fd);
  util::LineReader reader(pipe.read_fd);
  ASSERT_TRUE(util::write_all(pipe.write_fd, "par"));
  EXPECT_TRUE(reader.drain().empty());
  ASSERT_TRUE(util::write_all(pipe.write_fd, "tial line\nnext"));
  const std::vector<std::string> lines = reader.drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "partial line");
  EXPECT_FALSE(reader.eof());
}

TEST(Process, LineReaderMarksOverlongLineAsGarbled) {
  util::Pipe pipe;
  util::set_nonblocking(pipe.read_fd);
  util::LineReader reader(pipe.read_fd, 16);
  ASSERT_TRUE(
      util::write_all(pipe.write_fd, std::string(64, 'x')));  // no newline
  reader.drain();
  EXPECT_TRUE(reader.garbled());
  // Sticky: even a subsequent well-formed line does not un-garble.
  ASSERT_TRUE(util::write_all(pipe.write_fd, "ok\n"));
  EXPECT_TRUE(reader.drain().empty());
  EXPECT_TRUE(reader.garbled());
}

TEST(Process, WriteAllToClosedPipeFailsInsteadOfKilling) {
  ::signal(SIGPIPE, SIG_IGN);
  util::Pipe pipe;
  pipe.close_read();
  EXPECT_FALSE(util::write_all(pipe.write_fd, "into the void\n"));
  ::signal(SIGPIPE, SIG_DFL);
}

// ---- exit status decoding ---------------------------------------------------

TEST(Process, WaitDecodesExitCode) {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(7);
  const util::ExitStatus status = util::wait_for(pid);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 7);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.describe(), "exited with code 7");
}

TEST(Process, WaitDecodesTerminationSignal) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::raise(SIGKILL);
    ::_exit(0);
  }
  const util::ExitStatus status = util::wait_for(pid);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
  EXPECT_NE(status.describe().find("killed by signal 9"), std::string::npos);
}

TEST(Process, TryWaitReturnsNulloptWhileChildRuns) {
  util::Pipe pipe;  // child blocks on it until we close the write end
  const pid_t pid = ::fork();
  if (pid == 0) {
    pipe.close_write();  // or our own copy keeps the pipe open forever
    char c;
    [[maybe_unused]] const ssize_t n = ::read(pipe.read_fd, &c, 1);
    ::_exit(0);
  }
  EXPECT_FALSE(util::try_wait(pid).has_value());
  pipe.close_write();
  const util::ExitStatus status = util::wait_for(pid);
  EXPECT_TRUE(status.exited);
}

// ---- wire protocol ----------------------------------------------------------

using sweep::protocol::Command;
using sweep::protocol::LeaseItem;
using sweep::protocol::WorkerMessage;

TEST(Protocol, LeaseRoundTrips) {
  const std::vector<LeaseItem> items = {{3, 0}, {7, 2}};
  std::string wire = sweep::protocol::format_lease(items);
  ASSERT_EQ(wire.back(), '\n');
  wire.pop_back();
  const auto command = sweep::protocol::parse_command(wire, 10);
  ASSERT_TRUE(command.has_value());
  EXPECT_EQ(command->kind, Command::Kind::Lease);
  ASSERT_EQ(command->items.size(), 2u);
  EXPECT_EQ(command->items[0].task_index, 3u);
  EXPECT_EQ(command->items[1].task_index, 7u);
  EXPECT_EQ(command->items[1].attempt, 2);
}

TEST(Protocol, WorkerMessagesRoundTrip) {
  const auto parse = [](std::string wire) {
    wire.pop_back();  // strip '\n'
    return sweep::protocol::parse_worker_message(wire, 100);
  };
  EXPECT_EQ(parse(sweep::protocol::format_ready())->kind,
            WorkerMessage::Kind::Ready);
  EXPECT_EQ(parse(sweep::protocol::format_bye())->kind,
            WorkerMessage::Kind::Bye);
  const auto hb = parse(sweep::protocol::format_heartbeat(42));
  EXPECT_EQ(hb->kind, WorkerMessage::Kind::Heartbeat);
  EXPECT_EQ(hb->count, 42u);
  const auto done = parse(sweep::protocol::format_done(5, 96));
  EXPECT_EQ(done->kind, WorkerMessage::Kind::Done);
  EXPECT_EQ(done->task_index, 5u);
  EXPECT_EQ(done->count, 96u);
}

TEST(Protocol, RejectsGarbageInsteadOfGuessing) {
  const std::size_t tasks = 8;
  for (const std::string garbage :
       {"", "   ", "frobnicate", "lease", "lease 0", "lease 2 1:0",
        "lease 1 99:0", "lease 1 1-0", "lease 1 :", "lease x 1:0",
        "exit now", "\x01\x02 this is not the protocol \xff"}) {
    EXPECT_FALSE(sweep::protocol::parse_command(garbage, tasks).has_value())
        << "accepted command garbage: '" << garbage << "'";
  }
  for (const std::string garbage :
       {"", "readyy", "hb", "hb x", "start", "start 99", "done 1",
        "done 1 x", "done 99 5", "\x01\x02 this is not the protocol \xff"}) {
    EXPECT_FALSE(
        sweep::protocol::parse_worker_message(garbage, tasks).has_value())
        << "accepted worker garbage: '" << garbage << "'";
  }
}

// ---- chaos spec -------------------------------------------------------------

TEST(Chaos, ParseRoundTripsThroughDescribe) {
  const sim::ChaosSpec spec =
      sim::ChaosSpec::parse("seed=7,kill=0.02,segv=0.01,wedge=0.005,sticky=bt");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.kill_rate, 0.02);
  EXPECT_DOUBLE_EQ(spec.segv_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.wedge_rate, 0.005);
  EXPECT_EQ(spec.sticky_kill_substr, "bt");
  EXPECT_TRUE(spec.enabled());
  const sim::ChaosSpec reparsed = sim::ChaosSpec::parse(spec.describe());
  EXPECT_DOUBLE_EQ(reparsed.kill_rate, spec.kill_rate);
  EXPECT_EQ(reparsed.sticky_kill_substr, spec.sticky_kill_substr);
}

TEST(Chaos, ParseRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(sim::ChaosSpec::parse("frob=1"), std::invalid_argument);
  EXPECT_THROW(sim::ChaosSpec::parse("kill=banana"), std::invalid_argument);
  EXPECT_THROW(sim::ChaosSpec::parse("kill"), std::invalid_argument);
}

TEST(Chaos, DrawsAreDeterministicAndAttemptKeyed) {
  sim::ChaosSpec spec;
  spec.seed = 11;
  spec.kill_rate = 0.05;
  const sim::ChaosMonkey a(spec), b(spec);
  bool any_kill = false, attempt_differs = false;
  for (std::uint64_t sample = 1; sample <= 2000; ++sample) {
    const auto first = a.draw("milan/bt/A/0", 0, sample);
    EXPECT_EQ(first, b.draw("milan/bt/A/0", 0, sample)) << sample;
    any_kill = any_kill || first == sim::ChaosAction::Kill;
    // A reassigned setting (attempt bumped) must not replay the same fault
    // schedule, or a chaos kill would re-kill every replacement worker.
    if (first != a.draw("milan/bt/A/0", 1, sample)) attempt_differs = true;
  }
  EXPECT_TRUE(any_kill);
  EXPECT_TRUE(attempt_differs);
}

TEST(Chaos, StickySubstrKillsOnEveryAttempt) {
  sim::ChaosSpec spec;
  spec.sticky_kill_substr = "bt";
  const sim::ChaosMonkey monkey(spec);
  EXPECT_EQ(monkey.draw("milan/bt/A/0", 0, 1), sim::ChaosAction::Kill);
  EXPECT_EQ(monkey.draw("milan/bt/A/0", 5, 1), sim::ChaosAction::Kill);
  EXPECT_EQ(monkey.draw("milan/cg/A/0", 0, 1), sim::ChaosAction::None);
}

// ---- crash-safe fs helpers --------------------------------------------------

TEST(Fs, RenameFileMovesAtomicallyAndDurably) {
  ScratchDir dir("rename");
  const std::string from = util::path_join(dir.path(), "from.csv");
  const std::string to = util::path_join(dir.path(), "to.csv");
  util::atomic_write_file(from, "payload");
  util::atomic_write_file(to, "old");
  util::rename_file(from, to);
  EXPECT_FALSE(util::file_exists(from));
  EXPECT_EQ(util::read_file(to).value(), "payload");
}

TEST(Fs, RemoveFileDurableRemovesAndReportsAbsence) {
  ScratchDir dir("unlink");
  const std::string path = util::path_join(dir.path(), "victim");
  util::atomic_write_file(path, "x");
  EXPECT_TRUE(util::remove_file_durable(path));
  EXPECT_FALSE(util::file_exists(path));
  EXPECT_FALSE(util::remove_file_durable(path));
}

TEST(Fs, FsyncDirectoryAcceptsARealDirectory) {
  ScratchDir dir("fsync");
  EXPECT_TRUE(util::fsync_directory(dir.path()));
  EXPECT_FALSE(util::fsync_directory(
      util::path_join(dir.path(), "does_not_exist")));
}

TEST(Fs, RemoveStaleTempFilesSweepsOnlyTempDroppings) {
  ScratchDir dir("stale");
  util::atomic_write_file(util::path_join(dir.path(), "keep.csv"), "data");
  // Simulated droppings of writers killed between open and rename.
  util::atomic_write_file(util::path_join(dir.path(), "keep.csv.tmp.123"), "");
  util::atomic_write_file(util::path_join(dir.path(), "other.tmp.99999"), "");
  // Not the temp pattern: a non-numeric suffix must survive.
  util::atomic_write_file(util::path_join(dir.path(), "file.tmp.notpid"), "");
  EXPECT_EQ(util::remove_stale_temp_files(dir.path()), 2u);
  EXPECT_TRUE(util::file_exists(util::path_join(dir.path(), "keep.csv")));
  EXPECT_TRUE(
      util::file_exists(util::path_join(dir.path(), "file.tmp.notpid")));
  EXPECT_FALSE(
      util::file_exists(util::path_join(dir.path(), "keep.csv.tmp.123")));
}

// ---- mmap fallback ----------------------------------------------------------

TEST(MappedFile, BufferedFallbackServesIdenticalBytes) {
  ScratchDir dir("mmap");
  const std::string path = util::path_join(dir.path(), "blob");
  const std::string payload = "The quick brown fox\0jumps", copy = payload;
  util::atomic_write_file(path, payload);

  const util::MappedFile mapped(path);
  const util::MappedFile buffered(path, util::MappedFile::Mode::ForceBuffered);
  EXPECT_TRUE(mapped.memory_mapped());
  EXPECT_FALSE(buffered.memory_mapped());
  ASSERT_EQ(mapped.size(), buffered.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(mapped.data()),
                        mapped.size()),
            std::string(reinterpret_cast<const char*>(buffered.data()),
                        buffered.size()));
  EXPECT_EQ(copy.substr(0, mapped.size()),
            std::string(reinterpret_cast<const char*>(mapped.data()),
                        mapped.size()));
}

TEST(MappedFile, EnvEscapeHatchForcesBufferedMode) {
  ScratchDir dir("mmap_env");
  const std::string path = util::path_join(dir.path(), "blob");
  util::atomic_write_file(path, "bytes");
  ::setenv("OMPTUNE_NO_MMAP", "1", 1);
  const util::MappedFile file(path);
  ::unsetenv("OMPTUNE_NO_MMAP");
  EXPECT_FALSE(file.memory_mapped());
  EXPECT_EQ(file.size(), 5u);
}

TEST(MappedFile, EmptyFileHasSizeZeroInBothModes) {
  ScratchDir dir("mmap_empty");
  const std::string path = util::path_join(dir.path(), "empty");
  util::atomic_write_file(path, "");
  EXPECT_EQ(util::MappedFile(path).size(), 0u);
  EXPECT_EQ(
      util::MappedFile(path, util::MappedFile::Mode::ForceBuffered).size(),
      0u);
}

TEST(MappedFile, MissingFileThrows) {
  EXPECT_THROW(util::MappedFile("/no/such/file/anywhere"),
               std::runtime_error);
}

}  // namespace
}  // namespace omptune
