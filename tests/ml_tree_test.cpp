// Tests for the non-linear models (the paper's future-work extension):
// CART decision tree and random forest, including the cases linear models
// fail on (the paper's motivation for non-linear approaches).

#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace omptune::ml {
namespace {

/// XOR-style data: not linearly separable, trivial for a depth-2 tree.
void make_xor(Matrix& x, std::vector<int>& y, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  x = Matrix(static_cast<std::size_t>(n), 2);
  y.assign(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.at(static_cast<std::size_t>(r), 0) = a;
    x.at(static_cast<std::size_t>(r), 1) = b;
    y[static_cast<std::size_t>(r)] = (a > 0) != (b > 0) ? 1 : 0;
  }
}

TEST(DecisionTreeTest, SeparatesAxisAlignedData) {
  Matrix x(100, 1);
  std::vector<int> y(100);
  for (int r = 0; r < 100; ++r) {
    x.at(static_cast<std::size_t>(r), 0) = static_cast<double>(r);
    y[static_cast<std::size_t>(r)] = r >= 37 ? 1 : 0;
  }
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
  EXPECT_LE(tree.depth(), 2);
  // The single informative feature takes all the importance.
  EXPECT_DOUBLE_EQ(tree.feature_importance()[0], 1.0);
}

TEST(DecisionTreeTest, SolvesXorWhereLogisticFails) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 600, 3);

  LogisticRegression logistic;
  logistic.fit(x, y);
  EXPECT_LT(logistic.accuracy(x, y), 0.65);  // linear model: near chance

  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_GT(tree.accuracy(x, y), 0.95);  // the paper's non-linear fix
}

TEST(DecisionTreeTest, RespectsDepthAndLeafConstraints) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 400, 5);
  TreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  stump.fit(x, y);
  EXPECT_LE(stump.depth(), 1);
  EXPECT_LE(stump.node_count(), 3u);

  options.max_depth = 10;
  options.min_samples_leaf = 200;  // forbids any split of 400 rows but one
  DecisionTree fat_leaves(options);
  fat_leaves.fit(x, y);
  EXPECT_LE(fat_leaves.node_count(), 3u);
}

TEST(DecisionTreeTest, PureLabelsYieldSingleLeaf) {
  Matrix x(50, 2);
  std::vector<int> y(50, 1);
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  const auto proba = tree.predict_proba(x);
  for (const double p : proba) EXPECT_DOUBLE_EQ(p, 1.0);
  // No splits: importance is all zeros.
  for (const double imp : tree.feature_importance()) EXPECT_DOUBLE_EQ(imp, 0.0);
}

TEST(DecisionTreeTest, RejectsBadInput) {
  Matrix x(2, 1);
  DecisionTree tree;
  EXPECT_THROW(tree.fit(x, {0, 2}), std::invalid_argument);
  EXPECT_THROW(tree.fit(x, {0}), std::invalid_argument);
  EXPECT_THROW(tree.predict(x), std::logic_error);
}

TEST(DecisionTreeTest, DeterministicGivenSeed) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 300, 11);
  TreeOptions options;
  options.max_features = 1;
  options.seed = 42;
  DecisionTree a(options), b(options);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_EQ(a.predict(x), b.predict(x));
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  util::Xoshiro256 rng(13);
  Matrix x(800, 4);
  std::vector<int> y(800);
  for (int r = 0; r < 800; ++r) {
    double signal = 0.0;
    for (int c = 0; c < 4; ++c) {
      x.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = rng.normal();
      signal += (c < 2 ? 1.0 : 0.0) * x.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    }
    // Noisy labels: 12% flipped.
    const int clean = signal > 0 ? 1 : 0;
    y[static_cast<std::size_t>(r)] = rng.uniform() < 0.12 ? 1 - clean : clean;
  }
  RandomForest forest;
  forest.fit(x, y);
  EXPECT_GT(forest.oob_accuracy(), 0.75);
  // The informative features dominate the aggregated importance.
  const auto importance = forest.feature_importance();
  EXPECT_GT(importance[0] + importance[1], 0.7);
}

TEST(RandomForestTest, SolvesXor) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 600, 17);
  RandomForest forest;
  forest.fit(x, y);
  EXPECT_GT(forest.accuracy(x, y), 0.95);
  EXPECT_GT(forest.oob_accuracy(), 0.85);
}

TEST(RandomForestTest, ProbabilitiesAverageTrees) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 300, 19);
  ForestOptions options;
  options.num_trees = 5;
  RandomForest forest(options);
  forest.fit(x, y);
  EXPECT_EQ(forest.size(), 5u);
  for (const double p : forest.predict_proba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, RejectsBadInput) {
  RandomForest forest;
  EXPECT_THROW(forest.predict(Matrix(1, 1)), std::logic_error);
  Matrix x(2, 1);
  EXPECT_THROW(forest.fit(x, {0}), std::invalid_argument);
}

TEST(RandomForestTest, ImportanceSumsToOne) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 400, 23);
  RandomForest forest;
  forest.fit(x, y);
  double total = 0.0;
  for (const double v : forest.feature_importance()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace omptune::ml
