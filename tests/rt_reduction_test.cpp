// Reduction correctness across every method, operation and team size: all
// three algorithms must agree with the serial fold, from real threads.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "rt/aligned_alloc.hpp"
#include "rt/barrier.hpp"
#include "rt/reduction.hpp"

namespace omptune::rt {
namespace {

TEST(ReduceOps, IdentityAndApply) {
  EXPECT_DOUBLE_EQ(reduce_identity(ReduceOp::Sum), 0.0);
  EXPECT_DOUBLE_EQ(reduce_identity(ReduceOp::Prod), 1.0);
  EXPECT_TRUE(std::isinf(reduce_identity(ReduceOp::Max)));
  EXPECT_TRUE(std::isinf(reduce_identity(ReduceOp::Min)));
  EXPECT_DOUBLE_EQ(reduce_apply(ReduceOp::Sum, 2, 3), 5.0);
  EXPECT_DOUBLE_EQ(reduce_apply(ReduceOp::Prod, 2, 3), 6.0);
  EXPECT_DOUBLE_EQ(reduce_apply(ReduceOp::Max, 2, 3), 3.0);
  EXPECT_DOUBLE_EQ(reduce_apply(ReduceOp::Min, 2, 3), 2.0);
}

/// Run one reduction round on `team` real threads; every thread contributes
/// f(tid) and the result must equal the serial fold.
void check_reduction(int team, ReductionMethod method, ReduceOp op,
                     double (*f)(int)) {
  KmpAllocator alloc(64);
  Barrier barrier(team);
  Reducer reducer(alloc, team, barrier);

  double expected = reduce_identity(op);
  for (int t = 0; t < team; ++t) expected = reduce_apply(op, expected, f(t));

  std::vector<double> results(static_cast<std::size_t>(team), 0.0);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < team; ++t) {
      threads.emplace_back([&, t] {
        results[static_cast<std::size_t>(t)] = reducer.reduce(t, f(t), op, method);
      });
    }
  }
  for (int t = 0; t < team; ++t) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(t)], expected)
        << "method=" << to_string(method) << " op=" << static_cast<int>(op)
        << " team=" << team << " tid=" << t;
  }
}

struct ReductionCase {
  int team;
  ReductionMethod method;
  ReduceOp op;
};

class ReductionCorrectness : public ::testing::TestWithParam<ReductionCase> {};

TEST_P(ReductionCorrectness, AgreesWithSerialFold) {
  const auto& c = GetParam();
  check_reduction(c.team, c.method, c.op,
                  [](int t) { return 1.25 * t + 1.0; });
}

std::string reduction_case_name(const ::testing::TestParamInfo<ReductionCase>& info) {
  const auto& c = info.param;
  const char* op_names[] = {"sum", "prod", "max", "min"};
  return to_string(c.method) + "_" + op_names[static_cast<int>(c.op)] +
         "_team" + std::to_string(c.team);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionCorrectness,
    ::testing::ValuesIn([] {
      std::vector<ReductionCase> cases;
      for (const int team : {1, 2, 3, 4, 5, 8}) {
        for (const ReductionMethod method :
             {ReductionMethod::Tree, ReductionMethod::Critical,
              ReductionMethod::Atomic}) {
          for (const ReduceOp op :
               {ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min}) {
            cases.push_back({team, method, op});
          }
        }
      }
      return cases;
    }()),
    reduction_case_name);

TEST(Reducer, RepeatedRoundsAreIndependent) {
  constexpr int kTeam = 4;
  KmpAllocator alloc(64);
  Barrier barrier(kTeam);
  Reducer reducer(alloc, kTeam, barrier);

  std::vector<std::vector<double>> results(3, std::vector<double>(kTeam, 0.0));
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kTeam; ++t) {
      threads.emplace_back([&, t] {
        results[0][static_cast<std::size_t>(t)] =
            reducer.reduce(t, t + 1.0, ReduceOp::Sum, ReductionMethod::Tree);
        results[1][static_cast<std::size_t>(t)] =
            reducer.reduce(t, t + 1.0, ReduceOp::Sum, ReductionMethod::Critical);
        results[2][static_cast<std::size_t>(t)] =
            reducer.reduce(t, t + 1.0, ReduceOp::Max, ReductionMethod::Atomic);
      });
    }
  }
  for (int t = 0; t < kTeam; ++t) {
    EXPECT_DOUBLE_EQ(results[0][static_cast<std::size_t>(t)], 10.0);
    EXPECT_DOUBLE_EQ(results[1][static_cast<std::size_t>(t)], 10.0);
    EXPECT_DOUBLE_EQ(results[2][static_cast<std::size_t>(t)], 4.0);
  }
}

TEST(Reducer, SingleThreadSkipsSynchronization) {
  KmpAllocator alloc(64);
  Barrier barrier(1);
  Reducer reducer(alloc, 1, barrier);
  // The special path returns the local value untouched, for any method.
  EXPECT_DOUBLE_EQ(reducer.reduce(0, 7.5, ReduceOp::Sum, ReductionMethod::Tree), 7.5);
  EXPECT_DOUBLE_EQ(
      reducer.reduce(0, 7.5, ReduceOp::Sum, ReductionMethod::Critical), 7.5);
  EXPECT_EQ(reducer.contended_combines(), 0u);
}

TEST(Reducer, CriticalCountsSerializedCombines) {
  constexpr int kTeam = 4;
  KmpAllocator alloc(64);
  Barrier barrier(kTeam);
  Reducer reducer(alloc, kTeam, barrier);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kTeam; ++t) {
      threads.emplace_back([&, t] {
        reducer.reduce(t, 1.0, ReduceOp::Sum, ReductionMethod::Critical);
      });
    }
  }
  EXPECT_EQ(reducer.contended_combines(), static_cast<std::uint64_t>(kTeam));
}

TEST(Reducer, RejectsBadArguments) {
  KmpAllocator alloc(64);
  Barrier barrier(2);
  Reducer reducer(alloc, 2, barrier);
  EXPECT_THROW(reducer.reduce(-1, 0.0, ReduceOp::Sum, ReductionMethod::Tree),
               std::out_of_range);
  EXPECT_THROW(reducer.reduce(2, 0.0, ReduceOp::Sum, ReductionMethod::Tree),
               std::out_of_range);
  EXPECT_THROW(Reducer(alloc, 0, barrier), std::invalid_argument);
}

TEST(Barrier, ReleasesAllThreadsRepeatedly) {
  constexpr int kTeam = 4;
  Barrier barrier(kTeam);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kTeam; ++t) {
      threads.emplace_back([&] {
        for (int phase = 0; phase < 3; ++phase) {
          phase_counts[phase].fetch_add(1);
          barrier.arrive_and_wait();
          // After the barrier, everyone must have bumped this phase.
          EXPECT_EQ(phase_counts[phase].load(), kTeam);
        }
      });
    }
  }
}

TEST(Barrier, PassivePolicySleeps) {
  WaitBehavior wait;
  wait.policy = WaitPolicy::Passive;
  Barrier barrier(2, wait);
  std::jthread other([&barrier] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    barrier.arrive_and_wait();
  });
  barrier.arrive_and_wait();
  EXPECT_GE(barrier.sleep_count(), 1u);
}

TEST(Barrier, ActivePolicyNeverSleeps) {
  WaitBehavior wait;
  wait.policy = WaitPolicy::Active;
  Barrier barrier(2, wait);
  std::jthread other([&barrier] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    barrier.arrive_and_wait();
  });
  barrier.arrive_and_wait();
  EXPECT_EQ(barrier.sleep_count(), 0u);
}

TEST(Barrier, RejectsEmptyTeam) {
  EXPECT_THROW(Barrier(0), std::invalid_argument);
}

}  // namespace
}  // namespace omptune::rt
