// Tuner and study-orchestration tests: knowledge-based recommendations,
// search strategies (exhaustive / random / influence-ordered hill climb),
// and the end-to-end Study driver.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/study.hpp"
#include "core/thread_advisor.hpp"
#include "core/tuner.hpp"
#include "sim/executor.hpp"

namespace omptune::core {
namespace {

using arch::ArchId;
using arch::architecture;

const StudyResult& reduced_study() {
  static const StudyResult result = [] {
    sim::ModelRunner runner;
    Study study(runner, StudyOptions{.repetitions = 3});
    sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = 150;
    }
    return study.run(plan);
  }();
  return result;
}

TEST(Study, ProducesAllArtefacts) {
  const StudyResult& result = reduced_study();
  EXPECT_EQ(result.dataset.size(), 132u * 150u);
  EXPECT_EQ(result.upshot.size(), 3u);
  EXPECT_FALSE(result.ranges_by_arch.empty());
  EXPECT_EQ(result.ranges_by_app.size(), 15u);
  EXPECT_EQ(result.per_arch_influence.rows.size(), 3u);
  EXPECT_FALSE(result.per_app_influence.rows.empty());
  EXPECT_FALSE(result.per_arch_app_influence.rows.empty());
  EXPECT_FALSE(result.worst_trends.empty());
}

TEST(Study, AnalyzeIsIdempotentOnTheSameDataset) {
  sim::ModelRunner runner;
  Study study(runner);
  const StudyResult again = study.analyze(reduced_study().dataset);
  ASSERT_EQ(again.upshot.size(), reduced_study().upshot.size());
  for (std::size_t i = 0; i < again.upshot.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.upshot[i].median_best,
                     reduced_study().upshot[i].median_best);
  }
}

TEST(KnowledgeBase, VariablePriorityPutsHighImpactVariablesFirst) {
  const KnowledgeBase kb(reduced_study().dataset);
  const auto priority = kb.variable_priority("nqueens", "a64fx");
  ASSERT_FALSE(priority.empty());
  // For NQueens the library mode dominates everything else.
  EXPECT_EQ(priority.front(), "KMP_LIBRARY");
  // The low-impact variables end up at the back.
  const auto position = [&priority](const std::string& name) {
    return std::find(priority.begin(), priority.end(), name) - priority.begin();
  };
  EXPECT_GT(position("KMP_FORCE_REDUCTION"), position("KMP_LIBRARY"));
}

TEST(KnowledgeBase, FallsBackForUnknownPairs) {
  const KnowledgeBase kb(reduced_study().dataset);
  // Unknown app on a known arch: falls back to the arch ordering; unknown
  // arch falls back to the paper's Fig-3 ordering.
  EXPECT_FALSE(kb.variable_priority("new_app", "milan").empty());
  const auto fallback = kb.variable_priority("new_app", "power10");
  ASSERT_FALSE(fallback.empty());
  EXPECT_EQ(fallback.front(), "OMP_NUM_THREADS");
}

TEST(KnowledgeBase, BestKnownConfigBeatsDefault) {
  const KnowledgeBase kb(reduced_study().dataset);
  EXPECT_GT(kb.best_known_speedup("xsbench", "milan"), 1.5);
  const rt::RtConfig best = kb.best_known_config("nqueens", "skylake");
  EXPECT_EQ(best.library, rt::LibraryMode::Turnaround);
  EXPECT_THROW(kb.best_known_config("sort", "milan"), std::invalid_argument);
  EXPECT_THROW(kb.best_known_speedup("nope", "milan"), std::invalid_argument);
}

TEST(Tuner, ExhaustiveFindsTheGroundTruthOptimum) {
  sim::ModelRunner runner;
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  Tuner tuner(runner, app, app.default_input(), cpu);
  // Shrink the space for the exhaustive pass (keep it test-sized).
  sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  space.reductions = {rt::ReductionMethod::Default};
  space.aligns = {64};
  const auto result = tuner.exhaustive(space, cpu.cores);
  EXPECT_GT(result.speedup, 1.5);
  EXPECT_EQ(result.evaluations, space.size() + 1);
  // XSBench's optimum binds its threads.
  EXPECT_NE(result.best_config.effective_bind(), arch::BindKind::False_);
}

TEST(Tuner, HillClimbApproachesExhaustiveWithFarFewerEvaluations) {
  sim::ModelRunner runner_a, runner_b;
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);

  Tuner exhaustive_tuner(runner_a, app, app.default_input(), cpu);
  const auto truth = exhaustive_tuner.exhaustive(space, cpu.cores);

  const KnowledgeBase kb(reduced_study().dataset);
  Tuner climber(runner_b, app, app.default_input(), cpu);
  const auto climbed =
      climber.hill_climb(space, cpu.cores, kb.variable_priority("xsbench", "milan"));

  EXPECT_LT(climbed.evaluations, space.size() / 100);
  EXPECT_GT(climbed.speedup, 0.8 * truth.speedup);
}

TEST(Tuner, RandomSearchImprovesWithBudget) {
  sim::ModelRunner runner;
  const auto& cpu = architecture(ArchId::Skylake);
  const auto& app = apps::find_application("nqueens");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  Tuner tuner(runner, app, app.input_sizes().front(), cpu);
  const auto small = tuner.random_search(space, cpu.cores, 10);
  const auto large = tuner.random_search(space, cpu.cores, 400);
  EXPECT_GE(large.speedup, small.speedup);
  EXPECT_GT(large.speedup, 1.5);  // turnaround configs are half the space
  EXPECT_EQ(small.evaluations, 10u);
}

TEST(Tuner, HillClimbNeverReturnsWorseThanDefault) {
  sim::ModelRunner runner;
  for (const char* app_name : {"ep", "strassen", "lulesh"}) {
    const auto& cpu = architecture(ArchId::A64FX);
    const auto& app = apps::find_application(app_name);
    const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
    Tuner tuner(runner, app, app.default_input(), cpu);
    const auto result = tuner.hill_climb(
        space, cpu.cores,
        {"KMP_LIBRARY", "OMP_PROC_BIND", "OMP_PLACES", "OMP_SCHEDULE",
         "KMP_BLOCKTIME", "KMP_FORCE_REDUCTION", "KMP_ALIGN_ALLOC"});
    EXPECT_GE(result.speedup, 1.0 - 1e-9) << app_name;
  }
}

TEST(Tuner, UnknownVariableNamesAreIgnored) {
  sim::ModelRunner runner;
  const auto& cpu = architecture(ArchId::Skylake);
  const auto& app = apps::find_application("cg");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  Tuner tuner(runner, app, app.default_input(), cpu);
  const auto result = tuner.hill_climb(space, cpu.cores, {"NOT_A_VARIABLE"});
  EXPECT_EQ(result.evaluations, 1u);  // only the default was measured
  EXPECT_DOUBLE_EQ(result.speedup, 1.0);
}

TEST(Tuner, RestartedHillClimbIsAtLeastAsGoodAsOnePass) {
  sim::ModelRunner runner_a, runner_b;
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("cg");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);

  Tuner single(runner_a, app, app.default_input(), cpu);
  const auto one = single.hill_climb(
      space, cpu.cores,
      {"KMP_ALIGN_ALLOC", "KMP_FORCE_REDUCTION", "KMP_BLOCKTIME",
       "KMP_LIBRARY", "OMP_SCHEDULE", "OMP_PLACES", "OMP_PROC_BIND"});

  Tuner restarted(runner_b, app, app.default_input(), cpu);
  const auto multi = restarted.hill_climb_restarts(space, cpu.cores, 4);
  EXPECT_GE(multi.speedup, one.speedup - 0.05);
  EXPECT_GT(multi.evaluations, one.evaluations);
  EXPECT_THROW(restarted.hill_climb_restarts(space, cpu.cores, 0),
               std::invalid_argument);
}

TEST(Tuner, SimulatedAnnealingFindsGoodConfigurations) {
  sim::ModelRunner runner;
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  Tuner tuner(runner, app, app.default_input(), cpu);
  const auto result = tuner.simulated_annealing(space, cpu.cores, 200);
  EXPECT_EQ(result.evaluations, 201u);
  EXPECT_GT(result.speedup, 1.5);  // ground truth is ~2.4
  EXPECT_THROW(tuner.simulated_annealing(space, cpu.cores, 0),
               std::invalid_argument);
}

TEST(Tuner, AnnealingBestNeverWorseThanDefault) {
  sim::ModelRunner runner;
  const auto& cpu = architecture(ArchId::A64FX);
  const auto& app = apps::find_application("ep");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  Tuner tuner(runner, app, app.default_input(), cpu);
  const auto result = tuner.simulated_annealing(space, cpu.cores, 60);
  EXPECT_GE(result.speedup, 1.0 - 1e-9);
}

TEST(ThreadAdvisor, MemoryBoundAppsSaturateBelowTheCoreCount) {
  sim::PerfModel model;
  const auto& xs = apps::find_application("xsbench");
  const auto& milan = architecture(ArchId::Milan);
  const auto advice = advise_threads(model, xs, xs.default_input(), milan,
                                     rt::RtConfig::defaults_for(milan));
  // Bandwidth saturation: the fastest team is well below 96 cores.
  EXPECT_LT(advice.fastest_threads, 96);
  EXPECT_LE(advice.recommended_threads, advice.fastest_threads);
  // The curve ends slower than its minimum (contention inversion).
  EXPECT_GT(advice.curve.back().seconds,
            advice.curve[advice.curve.size() - 3].seconds * 0.999);
}

TEST(ThreadAdvisor, ComputeBoundAppsUseTheWholeMachine) {
  sim::PerfModel model;
  const auto& ep = apps::find_application("ep");
  const auto& milan = architecture(ArchId::Milan);
  const auto advice = advise_threads(model, ep, ep.default_input(), milan,
                                     rt::RtConfig::defaults_for(milan));
  EXPECT_EQ(advice.fastest_threads, 96);
}

TEST(ThreadAdvisor, CurveIsWellFormed) {
  sim::PerfModel model;
  const auto& app = apps::find_application("lu");
  const auto& cpu = architecture(ArchId::Skylake);
  const auto advice = advise_threads(model, app, app.default_input(), cpu,
                                     rt::RtConfig::defaults_for(cpu));
  ASSERT_FALSE(advice.curve.empty());
  EXPECT_EQ(advice.curve.front().threads, 1);
  EXPECT_EQ(advice.curve.back().threads, 40);
  for (const auto& point : advice.curve) {
    EXPECT_GT(point.seconds, 0.0);
    EXPECT_GT(point.parallel_efficiency, 0.0);
    EXPECT_LE(point.parallel_efficiency, 1.05);
  }
  EXPECT_THROW(advise_threads(model, app, app.default_input(), cpu,
                              rt::RtConfig::defaults_for(cpu), -0.1),
               std::invalid_argument);
}

TEST(Tuner, SurrogateSearchBeatsPureRandomAtEqualBudget) {
  const auto& cpu = architecture(ArchId::Milan);
  const auto& app = apps::find_application("xsbench");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);

  sim::ModelRunner runner_a, runner_b;
  core::Tuner random_tuner(runner_a, app, app.default_input(), cpu);
  core::Tuner surrogate_tuner(runner_b, app, app.default_input(), cpu);
  const auto random = random_tuner.random_search(space, cpu.cores, 48);
  const auto surrogate = surrogate_tuner.surrogate_search(space, cpu.cores, 48);

  EXPECT_EQ(surrogate.evaluations, 48u);
  EXPECT_GT(surrogate.speedup, 1.5);
  // The surrogate should at least keep pace with blind random sampling.
  EXPECT_GE(surrogate.speedup, 0.9 * random.speedup);
  EXPECT_THROW(surrogate_tuner.surrogate_search(space, cpu.cores, 0),
               std::invalid_argument);
}

TEST(Tuner, SurrogateSearchNeverWorseThanDefault) {
  const auto& cpu = architecture(ArchId::A64FX);
  const auto& app = apps::find_application("strassen");
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);
  sim::ModelRunner runner;
  core::Tuner tuner(runner, app, app.default_input(), cpu);
  const auto result = tuner.surrogate_search(space, cpu.cores, 30);
  EXPECT_GE(result.speedup, 1.0 - 1e-9);
  EXPECT_EQ(result.evaluations, 30u);
}

}  // namespace
}  // namespace omptune::core
