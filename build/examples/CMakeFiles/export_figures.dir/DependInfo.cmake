
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/export_figures.cpp" "examples/CMakeFiles/export_figures.dir/export_figures.cpp.o" "gcc" "examples/CMakeFiles/export_figures.dir/export_figures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/omptune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/omptune_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/omptune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/omptune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/omptune_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omptune_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/omptune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/omptune_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omptune_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omptune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
