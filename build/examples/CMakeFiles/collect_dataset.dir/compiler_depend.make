# Empty compiler generated dependencies file for collect_dataset.
# This may be replaced when dependencies are built.
