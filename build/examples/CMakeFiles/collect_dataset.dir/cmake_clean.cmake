file(REMOVE_RECURSE
  "CMakeFiles/collect_dataset.dir/collect_dataset.cpp.o"
  "CMakeFiles/collect_dataset.dir/collect_dataset.cpp.o.d"
  "collect_dataset"
  "collect_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
