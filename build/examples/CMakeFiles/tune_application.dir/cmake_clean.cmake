file(REMOVE_RECURSE
  "CMakeFiles/tune_application.dir/tune_application.cpp.o"
  "CMakeFiles/tune_application.dir/tune_application.cpp.o.d"
  "tune_application"
  "tune_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
