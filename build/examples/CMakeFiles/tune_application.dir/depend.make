# Empty dependencies file for tune_application.
# This may be replaced when dependencies are built.
