file(REMOVE_RECURSE
  "libomptune_arch.a"
)
