file(REMOVE_RECURSE
  "CMakeFiles/omptune_arch.dir/cpu_arch.cpp.o"
  "CMakeFiles/omptune_arch.dir/cpu_arch.cpp.o.d"
  "CMakeFiles/omptune_arch.dir/topology.cpp.o"
  "CMakeFiles/omptune_arch.dir/topology.cpp.o.d"
  "libomptune_arch.a"
  "libomptune_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
