# Empty compiler generated dependencies file for omptune_arch.
# This may be replaced when dependencies are built.
