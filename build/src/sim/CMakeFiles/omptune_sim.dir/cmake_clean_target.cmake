file(REMOVE_RECURSE
  "libomptune_sim.a"
)
