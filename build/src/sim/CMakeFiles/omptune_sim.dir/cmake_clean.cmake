file(REMOVE_RECURSE
  "CMakeFiles/omptune_sim.dir/energy_model.cpp.o"
  "CMakeFiles/omptune_sim.dir/energy_model.cpp.o.d"
  "CMakeFiles/omptune_sim.dir/executor.cpp.o"
  "CMakeFiles/omptune_sim.dir/executor.cpp.o.d"
  "CMakeFiles/omptune_sim.dir/perf_model.cpp.o"
  "CMakeFiles/omptune_sim.dir/perf_model.cpp.o.d"
  "libomptune_sim.a"
  "libomptune_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
