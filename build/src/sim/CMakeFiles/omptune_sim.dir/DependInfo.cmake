
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/omptune_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/omptune_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/omptune_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/omptune_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/omptune_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/omptune_sim.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/omptune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omptune_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/omptune_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omptune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
