# Empty dependencies file for omptune_sim.
# This may be replaced when dependencies are built.
