# Empty compiler generated dependencies file for omptune_rt.
# This may be replaced when dependencies are built.
