file(REMOVE_RECURSE
  "libomptune_rt.a"
)
