file(REMOVE_RECURSE
  "CMakeFiles/omptune_rt.dir/aligned_alloc.cpp.o"
  "CMakeFiles/omptune_rt.dir/aligned_alloc.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/barrier.cpp.o"
  "CMakeFiles/omptune_rt.dir/barrier.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/config.cpp.o"
  "CMakeFiles/omptune_rt.dir/config.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/reduction.cpp.o"
  "CMakeFiles/omptune_rt.dir/reduction.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/schedule.cpp.o"
  "CMakeFiles/omptune_rt.dir/schedule.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/task.cpp.o"
  "CMakeFiles/omptune_rt.dir/task.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/thread_team.cpp.o"
  "CMakeFiles/omptune_rt.dir/thread_team.cpp.o.d"
  "CMakeFiles/omptune_rt.dir/tree_barrier.cpp.o"
  "CMakeFiles/omptune_rt.dir/tree_barrier.cpp.o.d"
  "libomptune_rt.a"
  "libomptune_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
