
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/aligned_alloc.cpp" "src/rt/CMakeFiles/omptune_rt.dir/aligned_alloc.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/aligned_alloc.cpp.o.d"
  "/root/repo/src/rt/barrier.cpp" "src/rt/CMakeFiles/omptune_rt.dir/barrier.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/barrier.cpp.o.d"
  "/root/repo/src/rt/config.cpp" "src/rt/CMakeFiles/omptune_rt.dir/config.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/config.cpp.o.d"
  "/root/repo/src/rt/reduction.cpp" "src/rt/CMakeFiles/omptune_rt.dir/reduction.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/reduction.cpp.o.d"
  "/root/repo/src/rt/schedule.cpp" "src/rt/CMakeFiles/omptune_rt.dir/schedule.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/schedule.cpp.o.d"
  "/root/repo/src/rt/task.cpp" "src/rt/CMakeFiles/omptune_rt.dir/task.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/task.cpp.o.d"
  "/root/repo/src/rt/thread_team.cpp" "src/rt/CMakeFiles/omptune_rt.dir/thread_team.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/thread_team.cpp.o.d"
  "/root/repo/src/rt/tree_barrier.cpp" "src/rt/CMakeFiles/omptune_rt.dir/tree_barrier.cpp.o" "gcc" "src/rt/CMakeFiles/omptune_rt.dir/tree_barrier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omptune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omptune_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
