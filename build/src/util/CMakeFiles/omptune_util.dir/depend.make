# Empty dependencies file for omptune_util.
# This may be replaced when dependencies are built.
