file(REMOVE_RECURSE
  "libomptune_util.a"
)
