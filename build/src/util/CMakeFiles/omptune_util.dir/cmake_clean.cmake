file(REMOVE_RECURSE
  "CMakeFiles/omptune_util.dir/csv.cpp.o"
  "CMakeFiles/omptune_util.dir/csv.cpp.o.d"
  "CMakeFiles/omptune_util.dir/env.cpp.o"
  "CMakeFiles/omptune_util.dir/env.cpp.o.d"
  "CMakeFiles/omptune_util.dir/rng.cpp.o"
  "CMakeFiles/omptune_util.dir/rng.cpp.o.d"
  "CMakeFiles/omptune_util.dir/strings.cpp.o"
  "CMakeFiles/omptune_util.dir/strings.cpp.o.d"
  "CMakeFiles/omptune_util.dir/table.cpp.o"
  "CMakeFiles/omptune_util.dir/table.cpp.o.d"
  "libomptune_util.a"
  "libomptune_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
