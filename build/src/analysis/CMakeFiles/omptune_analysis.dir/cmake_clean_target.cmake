file(REMOVE_RECURSE
  "libomptune_analysis.a"
)
