file(REMOVE_RECURSE
  "CMakeFiles/omptune_analysis.dir/export.cpp.o"
  "CMakeFiles/omptune_analysis.dir/export.cpp.o.d"
  "CMakeFiles/omptune_analysis.dir/influence.cpp.o"
  "CMakeFiles/omptune_analysis.dir/influence.cpp.o.d"
  "CMakeFiles/omptune_analysis.dir/marginals.cpp.o"
  "CMakeFiles/omptune_analysis.dir/marginals.cpp.o.d"
  "CMakeFiles/omptune_analysis.dir/model_comparison.cpp.o"
  "CMakeFiles/omptune_analysis.dir/model_comparison.cpp.o.d"
  "CMakeFiles/omptune_analysis.dir/recommend.cpp.o"
  "CMakeFiles/omptune_analysis.dir/recommend.cpp.o.d"
  "CMakeFiles/omptune_analysis.dir/speedup.cpp.o"
  "CMakeFiles/omptune_analysis.dir/speedup.cpp.o.d"
  "libomptune_analysis.a"
  "libomptune_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
