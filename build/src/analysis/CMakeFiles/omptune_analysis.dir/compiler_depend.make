# Empty compiler generated dependencies file for omptune_analysis.
# This may be replaced when dependencies are built.
