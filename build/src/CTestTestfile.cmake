# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("arch")
subdirs("rt")
subdirs("apps")
subdirs("sim")
subdirs("sweep")
subdirs("stats")
subdirs("ml")
subdirs("analysis")
subdirs("core")
