# Empty dependencies file for omptune_apps.
# This may be replaced when dependencies are built.
