
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bots_alignment.cpp" "src/apps/CMakeFiles/omptune_apps.dir/bots_alignment.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/bots_alignment.cpp.o.d"
  "/root/repo/src/apps/bots_health.cpp" "src/apps/CMakeFiles/omptune_apps.dir/bots_health.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/bots_health.cpp.o.d"
  "/root/repo/src/apps/bots_nqueens.cpp" "src/apps/CMakeFiles/omptune_apps.dir/bots_nqueens.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/bots_nqueens.cpp.o.d"
  "/root/repo/src/apps/bots_sort.cpp" "src/apps/CMakeFiles/omptune_apps.dir/bots_sort.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/bots_sort.cpp.o.d"
  "/root/repo/src/apps/bots_strassen.cpp" "src/apps/CMakeFiles/omptune_apps.dir/bots_strassen.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/bots_strassen.cpp.o.d"
  "/root/repo/src/apps/npb_bt.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_bt.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_bt.cpp.o.d"
  "/root/repo/src/apps/npb_cg.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_cg.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_cg.cpp.o.d"
  "/root/repo/src/apps/npb_ep.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_ep.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_ep.cpp.o.d"
  "/root/repo/src/apps/npb_ft.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_ft.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_ft.cpp.o.d"
  "/root/repo/src/apps/npb_lu.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_lu.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_lu.cpp.o.d"
  "/root/repo/src/apps/npb_mg.cpp" "src/apps/CMakeFiles/omptune_apps.dir/npb_mg.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/npb_mg.cpp.o.d"
  "/root/repo/src/apps/proxy_lulesh.cpp" "src/apps/CMakeFiles/omptune_apps.dir/proxy_lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/proxy_lulesh.cpp.o.d"
  "/root/repo/src/apps/proxy_rsbench.cpp" "src/apps/CMakeFiles/omptune_apps.dir/proxy_rsbench.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/proxy_rsbench.cpp.o.d"
  "/root/repo/src/apps/proxy_su3bench.cpp" "src/apps/CMakeFiles/omptune_apps.dir/proxy_su3bench.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/proxy_su3bench.cpp.o.d"
  "/root/repo/src/apps/proxy_xsbench.cpp" "src/apps/CMakeFiles/omptune_apps.dir/proxy_xsbench.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/proxy_xsbench.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/omptune_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/omptune_apps.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/omptune_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omptune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omptune_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
