file(REMOVE_RECURSE
  "libomptune_apps.a"
)
