file(REMOVE_RECURSE
  "CMakeFiles/omptune_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/omptune_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/features.cpp.o"
  "CMakeFiles/omptune_ml.dir/features.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/linalg.cpp.o"
  "CMakeFiles/omptune_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/linear_regression.cpp.o"
  "CMakeFiles/omptune_ml.dir/linear_regression.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/omptune_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/random_forest.cpp.o"
  "CMakeFiles/omptune_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/omptune_ml.dir/scaler.cpp.o"
  "CMakeFiles/omptune_ml.dir/scaler.cpp.o.d"
  "libomptune_ml.a"
  "libomptune_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
