file(REMOVE_RECURSE
  "libomptune_ml.a"
)
