# Empty compiler generated dependencies file for omptune_ml.
# This may be replaced when dependencies are built.
