
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/omptune_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/omptune_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/omptune_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/linear_regression.cpp" "src/ml/CMakeFiles/omptune_ml.dir/linear_regression.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/linear_regression.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/omptune_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/omptune_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/omptune_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/omptune_ml.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sweep/CMakeFiles/omptune_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/omptune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omptune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omptune_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/omptune_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omptune_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
