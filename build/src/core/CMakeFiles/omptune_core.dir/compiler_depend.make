# Empty compiler generated dependencies file for omptune_core.
# This may be replaced when dependencies are built.
