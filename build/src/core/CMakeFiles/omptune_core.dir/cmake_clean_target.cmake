file(REMOVE_RECURSE
  "libomptune_core.a"
)
