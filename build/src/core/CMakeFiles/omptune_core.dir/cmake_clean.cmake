file(REMOVE_RECURSE
  "CMakeFiles/omptune_core.dir/study.cpp.o"
  "CMakeFiles/omptune_core.dir/study.cpp.o.d"
  "CMakeFiles/omptune_core.dir/thread_advisor.cpp.o"
  "CMakeFiles/omptune_core.dir/thread_advisor.cpp.o.d"
  "CMakeFiles/omptune_core.dir/tuner.cpp.o"
  "CMakeFiles/omptune_core.dir/tuner.cpp.o.d"
  "libomptune_core.a"
  "libomptune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
