file(REMOVE_RECURSE
  "CMakeFiles/omptune_sweep.dir/config_space.cpp.o"
  "CMakeFiles/omptune_sweep.dir/config_space.cpp.o.d"
  "CMakeFiles/omptune_sweep.dir/dataset.cpp.o"
  "CMakeFiles/omptune_sweep.dir/dataset.cpp.o.d"
  "CMakeFiles/omptune_sweep.dir/harness.cpp.o"
  "CMakeFiles/omptune_sweep.dir/harness.cpp.o.d"
  "CMakeFiles/omptune_sweep.dir/sharding.cpp.o"
  "CMakeFiles/omptune_sweep.dir/sharding.cpp.o.d"
  "libomptune_sweep.a"
  "libomptune_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
