# Empty compiler generated dependencies file for omptune_sweep.
# This may be replaced when dependencies are built.
