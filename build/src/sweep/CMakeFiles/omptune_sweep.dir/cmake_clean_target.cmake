file(REMOVE_RECURSE
  "libomptune_sweep.a"
)
