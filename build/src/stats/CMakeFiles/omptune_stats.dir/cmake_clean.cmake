file(REMOVE_RECURSE
  "CMakeFiles/omptune_stats.dir/descriptive.cpp.o"
  "CMakeFiles/omptune_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/omptune_stats.dir/kde.cpp.o"
  "CMakeFiles/omptune_stats.dir/kde.cpp.o.d"
  "CMakeFiles/omptune_stats.dir/wilcoxon.cpp.o"
  "CMakeFiles/omptune_stats.dir/wilcoxon.cpp.o.d"
  "libomptune_stats.a"
  "libomptune_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
