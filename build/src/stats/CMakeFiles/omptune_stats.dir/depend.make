# Empty dependencies file for omptune_stats.
# This may be replaced when dependencies are built.
