file(REMOVE_RECURSE
  "libomptune_stats.a"
)
