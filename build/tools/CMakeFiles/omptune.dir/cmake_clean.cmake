file(REMOVE_RECURSE
  "CMakeFiles/omptune.dir/omptune_cli.cpp.o"
  "CMakeFiles/omptune.dir/omptune_cli.cpp.o.d"
  "omptune"
  "omptune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omptune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
