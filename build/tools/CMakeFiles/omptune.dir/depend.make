# Empty dependencies file for omptune.
# This may be replaced when dependencies are built.
