file(REMOVE_RECURSE
  "CMakeFiles/seed_robustness_test.dir/seed_robustness_test.cpp.o"
  "CMakeFiles/seed_robustness_test.dir/seed_robustness_test.cpp.o.d"
  "seed_robustness_test"
  "seed_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
