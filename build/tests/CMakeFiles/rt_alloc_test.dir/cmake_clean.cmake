file(REMOVE_RECURSE
  "CMakeFiles/rt_alloc_test.dir/rt_alloc_test.cpp.o"
  "CMakeFiles/rt_alloc_test.dir/rt_alloc_test.cpp.o.d"
  "rt_alloc_test"
  "rt_alloc_test.pdb"
  "rt_alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
