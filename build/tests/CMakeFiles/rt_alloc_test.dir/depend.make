# Empty dependencies file for rt_alloc_test.
# This may be replaced when dependencies are built.
