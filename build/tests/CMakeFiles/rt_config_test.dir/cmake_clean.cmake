file(REMOVE_RECURSE
  "CMakeFiles/rt_config_test.dir/rt_config_test.cpp.o"
  "CMakeFiles/rt_config_test.dir/rt_config_test.cpp.o.d"
  "rt_config_test"
  "rt_config_test.pdb"
  "rt_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
