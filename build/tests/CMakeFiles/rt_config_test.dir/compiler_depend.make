# Empty compiler generated dependencies file for rt_config_test.
# This may be replaced when dependencies are built.
