file(REMOVE_RECURSE
  "CMakeFiles/integration_native_test.dir/integration_native_test.cpp.o"
  "CMakeFiles/integration_native_test.dir/integration_native_test.cpp.o.d"
  "integration_native_test"
  "integration_native_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_native_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
