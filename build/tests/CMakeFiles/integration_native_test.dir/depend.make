# Empty dependencies file for integration_native_test.
# This may be replaced when dependencies are built.
