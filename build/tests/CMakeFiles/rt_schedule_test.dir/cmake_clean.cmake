file(REMOVE_RECURSE
  "CMakeFiles/rt_schedule_test.dir/rt_schedule_test.cpp.o"
  "CMakeFiles/rt_schedule_test.dir/rt_schedule_test.cpp.o.d"
  "rt_schedule_test"
  "rt_schedule_test.pdb"
  "rt_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
