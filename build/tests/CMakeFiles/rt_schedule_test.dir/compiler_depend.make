# Empty compiler generated dependencies file for rt_schedule_test.
# This may be replaced when dependencies are built.
