file(REMOVE_RECURSE
  "CMakeFiles/rt_tree_barrier_test.dir/rt_tree_barrier_test.cpp.o"
  "CMakeFiles/rt_tree_barrier_test.dir/rt_tree_barrier_test.cpp.o.d"
  "rt_tree_barrier_test"
  "rt_tree_barrier_test.pdb"
  "rt_tree_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tree_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
