# Empty compiler generated dependencies file for rt_tree_barrier_test.
# This may be replaced when dependencies are built.
