# Empty dependencies file for rt_reduction_test.
# This may be replaced when dependencies are built.
