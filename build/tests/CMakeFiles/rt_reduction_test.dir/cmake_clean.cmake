file(REMOVE_RECURSE
  "CMakeFiles/rt_reduction_test.dir/rt_reduction_test.cpp.o"
  "CMakeFiles/rt_reduction_test.dir/rt_reduction_test.cpp.o.d"
  "rt_reduction_test"
  "rt_reduction_test.pdb"
  "rt_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
