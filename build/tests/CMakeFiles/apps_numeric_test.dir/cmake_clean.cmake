file(REMOVE_RECURSE
  "CMakeFiles/apps_numeric_test.dir/apps_numeric_test.cpp.o"
  "CMakeFiles/apps_numeric_test.dir/apps_numeric_test.cpp.o.d"
  "apps_numeric_test"
  "apps_numeric_test.pdb"
  "apps_numeric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
