file(REMOVE_RECURSE
  "CMakeFiles/rt_team_test.dir/rt_team_test.cpp.o"
  "CMakeFiles/rt_team_test.dir/rt_team_test.cpp.o.d"
  "rt_team_test"
  "rt_team_test.pdb"
  "rt_team_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_team_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
