# Empty compiler generated dependencies file for table7_best_configs.
# This may be replaced when dependencies are built.
