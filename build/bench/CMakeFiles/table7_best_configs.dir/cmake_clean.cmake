file(REMOVE_RECURSE
  "CMakeFiles/table7_best_configs.dir/table7_best_configs.cpp.o"
  "CMakeFiles/table7_best_configs.dir/table7_best_configs.cpp.o.d"
  "table7_best_configs"
  "table7_best_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_best_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
