# Empty compiler generated dependencies file for table4_runtime_stats.
# This may be replaced when dependencies are built.
