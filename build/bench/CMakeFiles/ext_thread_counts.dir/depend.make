# Empty dependencies file for ext_thread_counts.
# This may be replaced when dependencies are built.
