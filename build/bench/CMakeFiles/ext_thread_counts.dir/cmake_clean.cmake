file(REMOVE_RECURSE
  "CMakeFiles/ext_thread_counts.dir/ext_thread_counts.cpp.o"
  "CMakeFiles/ext_thread_counts.dir/ext_thread_counts.cpp.o.d"
  "ext_thread_counts"
  "ext_thread_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_thread_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
