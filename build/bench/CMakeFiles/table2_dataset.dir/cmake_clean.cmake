file(REMOVE_RECURSE
  "CMakeFiles/table2_dataset.dir/table2_dataset.cpp.o"
  "CMakeFiles/table2_dataset.dir/table2_dataset.cpp.o.d"
  "table2_dataset"
  "table2_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
