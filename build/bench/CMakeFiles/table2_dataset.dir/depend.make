# Empty dependencies file for table2_dataset.
# This may be replaced when dependencies are built.
