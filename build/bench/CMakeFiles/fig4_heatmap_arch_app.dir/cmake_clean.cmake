file(REMOVE_RECURSE
  "CMakeFiles/fig4_heatmap_arch_app.dir/fig4_heatmap_arch_app.cpp.o"
  "CMakeFiles/fig4_heatmap_arch_app.dir/fig4_heatmap_arch_app.cpp.o.d"
  "fig4_heatmap_arch_app"
  "fig4_heatmap_arch_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_heatmap_arch_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
