# Empty dependencies file for fig4_heatmap_arch_app.
# This may be replaced when dependencies are built.
