file(REMOVE_RECURSE
  "CMakeFiles/fig7_rsbench_violin.dir/fig7_rsbench_violin.cpp.o"
  "CMakeFiles/fig7_rsbench_violin.dir/fig7_rsbench_violin.cpp.o.d"
  "fig7_rsbench_violin"
  "fig7_rsbench_violin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rsbench_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
