# Empty dependencies file for fig7_rsbench_violin.
# This may be replaced when dependencies are built.
