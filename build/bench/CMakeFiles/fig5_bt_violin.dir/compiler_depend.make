# Empty compiler generated dependencies file for fig5_bt_violin.
# This may be replaced when dependencies are built.
