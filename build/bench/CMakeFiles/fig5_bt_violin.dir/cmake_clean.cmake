file(REMOVE_RECURSE
  "CMakeFiles/fig5_bt_violin.dir/fig5_bt_violin.cpp.o"
  "CMakeFiles/fig5_bt_violin.dir/fig5_bt_violin.cpp.o.d"
  "fig5_bt_violin"
  "fig5_bt_violin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bt_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
