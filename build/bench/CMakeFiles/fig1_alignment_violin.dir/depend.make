# Empty dependencies file for fig1_alignment_violin.
# This may be replaced when dependencies are built.
