file(REMOVE_RECURSE
  "CMakeFiles/fig1_alignment_violin.dir/fig1_alignment_violin.cpp.o"
  "CMakeFiles/fig1_alignment_violin.dir/fig1_alignment_violin.cpp.o.d"
  "fig1_alignment_violin"
  "fig1_alignment_violin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_alignment_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
