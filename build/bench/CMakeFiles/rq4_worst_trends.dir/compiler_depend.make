# Empty compiler generated dependencies file for rq4_worst_trends.
# This may be replaced when dependencies are built.
