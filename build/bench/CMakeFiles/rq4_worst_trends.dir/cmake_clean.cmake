file(REMOVE_RECURSE
  "CMakeFiles/rq4_worst_trends.dir/rq4_worst_trends.cpp.o"
  "CMakeFiles/rq4_worst_trends.dir/rq4_worst_trends.cpp.o.d"
  "rq4_worst_trends"
  "rq4_worst_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq4_worst_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
