# Empty dependencies file for table6_speedup_by_app.
# This may be replaced when dependencies are built.
