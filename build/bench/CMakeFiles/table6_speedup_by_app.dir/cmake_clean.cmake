file(REMOVE_RECURSE
  "CMakeFiles/table6_speedup_by_app.dir/table6_speedup_by_app.cpp.o"
  "CMakeFiles/table6_speedup_by_app.dir/table6_speedup_by_app.cpp.o.d"
  "table6_speedup_by_app"
  "table6_speedup_by_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_speedup_by_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
