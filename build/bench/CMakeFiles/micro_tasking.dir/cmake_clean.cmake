file(REMOVE_RECURSE
  "CMakeFiles/micro_tasking.dir/micro_tasking.cpp.o"
  "CMakeFiles/micro_tasking.dir/micro_tasking.cpp.o.d"
  "micro_tasking"
  "micro_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
