# Empty compiler generated dependencies file for micro_tasking.
# This may be replaced when dependencies are built.
