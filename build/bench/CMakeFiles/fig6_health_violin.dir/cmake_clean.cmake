file(REMOVE_RECURSE
  "CMakeFiles/fig6_health_violin.dir/fig6_health_violin.cpp.o"
  "CMakeFiles/fig6_health_violin.dir/fig6_health_violin.cpp.o.d"
  "fig6_health_violin"
  "fig6_health_violin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_health_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
