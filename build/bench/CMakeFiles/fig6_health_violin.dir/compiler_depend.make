# Empty compiler generated dependencies file for fig6_health_violin.
# This may be replaced when dependencies are built.
