# Empty dependencies file for ext_model_comparison.
# This may be replaced when dependencies are built.
