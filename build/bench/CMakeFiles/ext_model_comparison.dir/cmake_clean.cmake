file(REMOVE_RECURSE
  "CMakeFiles/ext_model_comparison.dir/ext_model_comparison.cpp.o"
  "CMakeFiles/ext_model_comparison.dir/ext_model_comparison.cpp.o.d"
  "ext_model_comparison"
  "ext_model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
