# Empty compiler generated dependencies file for table5_speedup_by_arch.
# This may be replaced when dependencies are built.
