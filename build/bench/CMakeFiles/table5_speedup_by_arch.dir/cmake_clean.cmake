file(REMOVE_RECURSE
  "CMakeFiles/table5_speedup_by_arch.dir/table5_speedup_by_arch.cpp.o"
  "CMakeFiles/table5_speedup_by_arch.dir/table5_speedup_by_arch.cpp.o.d"
  "table5_speedup_by_arch"
  "table5_speedup_by_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_speedup_by_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
