file(REMOVE_RECURSE
  "CMakeFiles/micro_waitpolicy.dir/micro_waitpolicy.cpp.o"
  "CMakeFiles/micro_waitpolicy.dir/micro_waitpolicy.cpp.o.d"
  "micro_waitpolicy"
  "micro_waitpolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_waitpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
