# Empty compiler generated dependencies file for micro_waitpolicy.
# This may be replaced when dependencies are built.
