file(REMOVE_RECURSE
  "CMakeFiles/table3_wilcoxon.dir/table3_wilcoxon.cpp.o"
  "CMakeFiles/table3_wilcoxon.dir/table3_wilcoxon.cpp.o.d"
  "table3_wilcoxon"
  "table3_wilcoxon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wilcoxon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
