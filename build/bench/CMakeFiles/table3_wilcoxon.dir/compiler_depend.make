# Empty compiler generated dependencies file for table3_wilcoxon.
# This may be replaced when dependencies are built.
