# Empty compiler generated dependencies file for micro_barrier.
# This may be replaced when dependencies are built.
