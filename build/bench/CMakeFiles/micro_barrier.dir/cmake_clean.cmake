file(REMOVE_RECURSE
  "CMakeFiles/micro_barrier.dir/micro_barrier.cpp.o"
  "CMakeFiles/micro_barrier.dir/micro_barrier.cpp.o.d"
  "micro_barrier"
  "micro_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
