file(REMOVE_RECURSE
  "CMakeFiles/fig2_heatmap_per_app.dir/fig2_heatmap_per_app.cpp.o"
  "CMakeFiles/fig2_heatmap_per_app.dir/fig2_heatmap_per_app.cpp.o.d"
  "fig2_heatmap_per_app"
  "fig2_heatmap_per_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_heatmap_per_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
