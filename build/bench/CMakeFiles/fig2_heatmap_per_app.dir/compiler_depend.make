# Empty compiler generated dependencies file for fig2_heatmap_per_app.
# This may be replaced when dependencies are built.
