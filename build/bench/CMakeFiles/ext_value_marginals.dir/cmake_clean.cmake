file(REMOVE_RECURSE
  "CMakeFiles/ext_value_marginals.dir/ext_value_marginals.cpp.o"
  "CMakeFiles/ext_value_marginals.dir/ext_value_marginals.cpp.o.d"
  "ext_value_marginals"
  "ext_value_marginals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_value_marginals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
