# Empty dependencies file for ext_value_marginals.
# This may be replaced when dependencies are built.
