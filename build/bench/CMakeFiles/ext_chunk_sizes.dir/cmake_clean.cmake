file(REMOVE_RECURSE
  "CMakeFiles/ext_chunk_sizes.dir/ext_chunk_sizes.cpp.o"
  "CMakeFiles/ext_chunk_sizes.dir/ext_chunk_sizes.cpp.o.d"
  "ext_chunk_sizes"
  "ext_chunk_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chunk_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
