# Empty dependencies file for ext_chunk_sizes.
# This may be replaced when dependencies are built.
