file(REMOVE_RECURSE
  "CMakeFiles/fig3_heatmap_per_arch.dir/fig3_heatmap_per_arch.cpp.o"
  "CMakeFiles/fig3_heatmap_per_arch.dir/fig3_heatmap_per_arch.cpp.o.d"
  "fig3_heatmap_per_arch"
  "fig3_heatmap_per_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heatmap_per_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
