# Empty dependencies file for fig3_heatmap_per_arch.
# This may be replaced when dependencies are built.
