file(REMOVE_RECURSE
  "CMakeFiles/ext_numa_domains.dir/ext_numa_domains.cpp.o"
  "CMakeFiles/ext_numa_domains.dir/ext_numa_domains.cpp.o.d"
  "ext_numa_domains"
  "ext_numa_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_numa_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
