# Empty compiler generated dependencies file for ext_numa_domains.
# This may be replaced when dependencies are built.
