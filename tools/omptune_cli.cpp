// omptune — command-line front end for the study and the tuner.
//
//   omptune list                       applications and architectures
//   omptune study [N] [out]           run the study (N configs/setting;
//                                      0 or omitted = full Table II scale;
//                                      out: .csv or binary .omps store)
//     --journal=<dir>                  write-ahead journal per setting
//     --resume                         replay completed journal entries
//     --max-retries=<N>                retries per failed sample (default 2)
//     --sample-timeout-ms=<T>          per-sample watchdog deadline
//     --workers=<N>                    process-isolated collection: N forked
//                                      workers under the study supervisor
//     --heartbeat-timeout-ms=<T>       kill workers silent for T ms (hung)
//     --max-setting-crashes=<N>        crashes before a setting quarantines
//     --chaos=<spec>                   deterministic fault injection in the
//                                      workers, e.g. seed=7,kill=0.02
//   omptune coordinate [N] <out.omps> multi-host collection: shard manifests
//                                      leased to forked host agents, merged
//                                      by tiered compaction (N configs per
//                                      setting; 0 or omitted = full scale)
//     --hosts=<N>                      host agent processes (default 2)
//     --shards=<N>                     shard manifests (default 2*hosts);
//                                      byte-identical runs must agree on it
//     --dir=<dir>                      coordinator state + shard stores
//     --resume                         resume from --dir's write-ahead state
//     --lease-ttl-ms=<T>               wall-clock budget per leased shard
//     --heartbeat-timeout-ms=<T>       kill agents silent for T ms
//     --backoff-base-ms=<T> --backoff-max-ms=<T>
//                                      re-lease backoff (decorrelated jitter)
//     --max-shard-attempts=<N>         strikes before a shard quarantines
//     --chaos=<spec>                   host-level fault injection, e.g.
//                                      seed=7,kill=0.05,truncate=0.02
//     --lenient                        skip corrupt shard stores at assembly
//   omptune analyze <dataset>         re-derive every artefact from a
//                                      dataset (.csv or .omps store)
//   omptune compact <journal> <out.omps>
//                                      fold a journal's per-setting CSVs
//                                      into one indexed store
//   omptune query <store.omps> <app> <arch>
//                                      indexed store query + knowledge-based
//                                      recommendation, no CSV parsing
//   omptune query --remote=<socket> <app> <arch>
//                                      the same recommendation answered by a
//                                      running `omptune serve` instance over
//                                      its unix socket (microseconds, no
//                                      store open per query)
//     --retries=<N>                    attempts per call through the
//                                      resilient client (default 6; 1 =
//                                      fail on the first typed shed)
//     --retry-timeout-ms=<T>           per-socket recv/send budget so a
//                                      stalled server becomes a retry
//   omptune serve <store.omps>... --socket=<path>
//                                      long-running recommendation server
//                                      over the given store shards
//     --tcp-port=<N>                   also listen on 127.0.0.1:N (0 =
//                                      ephemeral)
//     --cache=<N>                      reply-cache entries (default 4096)
//     --max-pending=<N>                admission bound per poll round
//     --request-deadline-ms=<T>        per-request budget; a query past it
//                                      gets a typed DeadlineExceeded reply
//     --stall-timeout-ms=<T>           evict connections holding a partial
//                                      frame without progress (slowloris)
//     --no-admin                       refuse wire Swap/Shutdown messages
//     --supervised                     run under a serve::Keeper: the server
//                                      forks as a child, heartbeats over a
//                                      pipe, and is restarted with backoff
//                                      on crash or wedge, booting from the
//                                      last hot-swapped shard set
//     --hang-timeout-ms=<T>            heartbeat silence that counts as a
//                                      wedge (supervised only)
//     --max-restarts=<N>               give up after N restarts without
//                                      stability (default: never)
//     --incident-log=<path>            append-only crash/hang log, written
//                                      before each restart
//     --pid-file=<path>                current child pid, atomically
//                                      rewritten per incarnation
//   omptune serve-ctl <socket> stats | swap <store.omps>... | shutdown
//                                      admin client for a running server
//   omptune recommend <app> <arch>    variable priority + best known config
//     --store=<file.omps>              answer from a study store instead of
//                                      re-running a quick study
//   omptune tune <app> <arch> [strategy] [budget]
//                                      strategy: hill|random|anneal|exhaustive
//   omptune violin <app>              ASCII violins per (arch, setting)

#include <poll.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include "analysis/recommend.hpp"
#include "core/study.hpp"
#include "serve/client.hpp"
#include "serve/keeper.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "core/thread_advisor.hpp"
#include "rt/calibration.hpp"
#include "core/tuner.hpp"
#include "sim/energy_model.hpp"
#include "sim/fault_runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "store/compact.hpp"
#include "store/reader.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/journal.hpp"
#include "util/env.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace omptune;

/// Lanes for the analytics thread pool: --analysis-threads=N (parsed and
/// stripped in main, valid for every command), else OMPTUNE_ANALYSIS_THREADS,
/// else hardware_concurrency. 0 = let ThreadPool resolve the default.
unsigned g_analysis_threads = 0;

util::ThreadPool make_analysis_pool() {
  return util::ThreadPool(g_analysis_threads);
}

int usage() {
  std::printf(
      "usage: omptune <command> [args]\n"
      "  list                              applications and architectures\n"
      "  study [configs] [out]             run the sweep (0 = full scale;\n"
      "        [--journal=<dir>] [--resume] out: .csv or binary .omps store)\n"
      "        [--max-retries=N] [--sample-timeout-ms=T]\n"
      "        [--workers=N] [--heartbeat-timeout-ms=T]\n"
      "        [--max-setting-crashes=N] [--chaos=<spec>]\n"
      "                                    checkpointed, resumable, fault-\n"
      "                                    tolerant collection; --workers\n"
      "                                    isolates faults in forked processes\n"
      "  coordinate [configs] <out.omps>   multi-host collection: shards\n"
      "        [--hosts=N] [--shards=N]    leased to forked host agents,\n"
      "        [--dir=<dir>] [--resume]    merged by tiered compaction into\n"
      "        [--lease-ttl-ms=T]          one byte-stable .omps store\n"
      "        [--heartbeat-timeout-ms=T]\n"
      "        [--backoff-base-ms=T] [--backoff-max-ms=T]\n"
      "        [--max-shard-attempts=N] [--chaos=<spec>] [--lenient]\n"
      "  analyze <dataset>                 derive artefacts from a dataset\n"
      "                                    (.csv or .omps store)\n"
      "  compact <journal> <out.omps>      fold per-setting journal CSVs into\n"
      "                                    one indexed binary store\n"
      "  query <store.omps> <app> <arch>   indexed store query + knowledge-\n"
      "                                    based recommendation\n"
      "  query --remote=<socket> <app> <arch>\n"
      "        [--retries=N]             the same, answered by a running\n"
      "        [--retry-timeout-ms=T]    `omptune serve` over its socket via\n"
      "                                    the retrying client (bounded\n"
      "                                    backoff, reconnect-and-replay)\n"
      "  serve <store.omps>... --socket=<path>\n"
      "        [--tcp-port=N] [--cache=N] long-running recommendation server\n"
      "        [--max-pending=N]          with batching, reply cache and\n"
      "        [--request-deadline-ms=T]  store hot-swap (SIGINT drains);\n"
      "        [--stall-timeout-ms=T]     typed DeadlineExceeded on blown\n"
      "        [--no-admin]               budgets, slowloris eviction\n"
      "        [--supervised]             fork under a Keeper: crash/wedge\n"
      "        [--hang-timeout-ms=T]      detection over a heartbeat pipe,\n"
      "        [--max-restarts=N]         backoff restarts onto the same\n"
      "        [--incident-log=<path>]    socket from the last-known-good\n"
      "        [--pid-file=<path>]        shard set, write-ahead incidents\n"
      "  serve-ctl <socket> stats | swap <store.omps>... | shutdown\n"
      "                                    admin client for a running server\n"
      "  recommend <app> <arch> [--store=<file.omps>]\n"
      "                                    knowledge-based recommendation\n"
      "  tune <app> <arch> [strategy] [budget]\n"
      "                                    strategy: hill|random|anneal|exhaustive\n"
      "  violin <app>                      distribution per (arch, setting)\n"
      "  model <app> <arch> [config...]    runtime/energy breakdown; config\n"
      "                                    tokens like KMP_LIBRARY=turnaround;\n"
      "                                    --calibration=FILE uses a measured\n"
      "                                    primitive-cost table (see\n"
      "                                    bench/micro_primitives)\n"
      "  threads <app> <arch>              thread-count scaling + advice\n"
      "global flags:\n"
      "  --analysis-threads=N              worker threads for the analytics\n"
      "                                    engine (default: the\n"
      "                                    OMPTUNE_ANALYSIS_THREADS variable,\n"
      "                                    then all hardware threads); results\n"
      "                                    are identical at any thread count\n");
  return 2;
}

sweep::Dataset quick_study(std::size_t configs_per_setting) {
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  if (configs_per_setting > 0) {
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) {
        count = configs_per_setting;
      }
    }
  }
  return harness.run_study(plan);
}

void print_artifacts(const core::StudyResult& result) {
  std::printf("\nper-architecture upshot (Section V.1):\n");
  for (const auto& u : result.upshot) {
    std::printf("  %-8s min %.3f  median %.3f  max %.3f\n", u.arch.c_str(),
                u.min_best, u.median_best, u.max_best);
  }

  util::TextTable ranges("\nspeedup ranges per application (Table VI):",
                         {"app", "range"});
  for (const auto& r : result.ranges_by_app) {
    ranges.add_row({r.app, util::format_double(r.lo, 3) + " - " +
                               util::format_double(r.hi, 3)});
  }
  std::printf("%s", ranges.render().c_str());

  std::printf("\nfeature influence per architecture (Fig 3):\n");
  util::HeatMapRenderer heat("", result.per_arch_influence.feature_names);
  for (const auto& row : result.per_arch_influence.rows) {
    heat.add_row(row.group, row.influence);
  }
  std::printf("%s", heat.render().c_str());

  std::printf("\nworst-performance trends (Section V.4):\n");
  for (const auto& t : result.worst_trends) {
    std::printf("  lift %5.2f  %s\n", t.lift, t.condition.c_str());
  }
}

int cmd_list() {
  util::TextTable apps_table("applications:", {"name", "suite", "parallelism",
                                               "sweeps", "inputs"});
  for (const apps::Application* app : apps::registry()) {
    std::string inputs;
    for (const auto& input : app->input_sizes()) {
      if (!inputs.empty()) inputs += ",";
      inputs += input.name;
    }
    apps_table.add_row({app->name(), app->suite(), to_string(app->kind()),
                        app->sweep_mode() == apps::SweepMode::VaryInputSize
                            ? "input sizes"
                            : "thread counts",
                        inputs});
  }
  std::printf("%s\n", apps_table.render().c_str());

  util::TextTable archs("architectures:",
                        {"name", "description", "cores", "numa", "cacheline"});
  for (const auto& cpu : arch::all_architectures()) {
    archs.add_row({cpu.name, cpu.description, std::to_string(cpu.cores),
                   std::to_string(cpu.numa_nodes),
                   std::to_string(cpu.cacheline_bytes)});
  }
  std::printf("%s", archs.render().c_str());
  return 0;
}

/// Parse the numeric value of a `--flag=N` argument; exits with a message
/// naming the flag on anything that is not a plain non-negative integer.
long long flag_value(const std::string& arg, std::size_t prefix_len) {
  const std::string value = arg.substr(prefix_len);
  const std::string flag = arg.substr(0, prefix_len - 1);
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "omptune: %s expects a non-negative integer, got '%s'\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return std::stoll(value);
}

int cmd_study(int argc, char** argv) {
  // Flags may appear anywhere after the command; the remaining positionals
  // are [configs] [out.csv] as before.
  sweep::StudyRunOptions options;
  int workers = 0;
  long long heartbeat_timeout_ms = -1;
  int max_setting_crashes = 0;
  sim::ChaosSpec chaos;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--journal=")) {
      options.journal_dir = arg.substr(10);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (util::starts_with(arg, "--max-retries=")) {
      options.resilient = true;
      options.resilience.max_retries = static_cast<int>(flag_value(arg, 14));
    } else if (util::starts_with(arg, "--sample-timeout-ms=")) {
      options.resilient = true;
      options.resilience.sample_timeout_ms = flag_value(arg, 20);
    } else if (util::starts_with(arg, "--workers=")) {
      workers = static_cast<int>(flag_value(arg, 10));
    } else if (util::starts_with(arg, "--heartbeat-timeout-ms=")) {
      heartbeat_timeout_ms = flag_value(arg, 23);
    } else if (util::starts_with(arg, "--max-setting-crashes=")) {
      max_setting_crashes = static_cast<int>(flag_value(arg, 22));
    } else if (util::starts_with(arg, "--chaos=")) {
      chaos = sim::ChaosSpec::parse(arg.substr(8));  // throws on a bad spec
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "omptune study: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (options.resume && options.journal_dir.empty()) {
    std::fprintf(stderr, "omptune study: --resume requires --journal=<dir>\n");
    return usage();
  }
  if (workers <= 0 &&
      (heartbeat_timeout_ms >= 0 || max_setting_crashes > 0 ||
       chaos.enabled())) {
    std::fprintf(stderr,
                 "omptune study: --heartbeat-timeout-ms/--max-setting-crashes/"
                 "--chaos require --workers=<N>\n");
    return usage();
  }
  // Journaled runs get the resilient path by default: a checkpointed study
  // is expected to survive bad samples.
  if (!options.journal_dir.empty()) options.resilient = true;

  const std::size_t configs = !positional.empty() ? std::stoul(positional[0]) : 0;
  sim::ModelRunner runner;
  core::Study study(runner);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  if (configs > 0) {
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = configs;
    }
  }

  const util::ThreadPool pool = make_analysis_pool();
  core::StudyResult result;
  if (workers > 0) {
    // Process-isolated collection: faults (and injected chaos) are contained
    // to forked workers; the supervisor reassigns their leases and the same
    // seed derivation keeps the dataset identical to a single-process run.
    sweep::SupervisorOptions supervisor_options;
    supervisor_options.workers = workers;
    supervisor_options.journal_dir = options.journal_dir;
    supervisor_options.resume = options.resume;
    supervisor_options.resilient = true;
    supervisor_options.resilience = options.resilience;
    supervisor_options.chaos = chaos;
    if (heartbeat_timeout_ms >= 0) {
      supervisor_options.heartbeat_timeout_ms = heartbeat_timeout_ms;
    }
    if (max_setting_crashes > 0) {
      supervisor_options.max_setting_crashes = max_setting_crashes;
    }
    sweep::SupervisorReport report;
    result = study.run_supervised(
        plan, [] { return std::make_unique<sim::ModelRunner>(); },
        supervisor_options, &report, &pool);
    std::printf("collected %zu samples across %d worker processes\n",
                result.dataset.size(), workers);
    if (report.worker_crashes + report.hang_kills + report.lease_expiries +
            report.protocol_errors >
        0) {
      std::printf("worker faults contained: %zu crashes, %zu hangs killed, "
                  "%zu leases expired, %zu protocol errors (%zu respawns, "
                  "%zu settings reassigned)\n",
                  report.worker_crashes, report.hang_kills,
                  report.lease_expiries, report.protocol_errors,
                  report.respawns, report.reassigned_settings);
    }
    for (const auto& q : report.quarantined_settings) {
      std::printf("quarantined setting %s after %d worker crashes: %s\n",
                  q.key.c_str(), q.crashes, q.evidence.c_str());
    }
    if (report.interrupted) {
      std::printf("study interrupted: %zu/%zu settings completed\n",
                  report.settings_completed, report.settings_total);
      std::string rerun_args;
      for (const std::string& p : positional) rerun_args += p + " ";
      std::printf("resume with: omptune study %s--workers=%d --journal=%s "
                  "--resume\n",
                  rerun_args.c_str(), workers, report.journal_dir.c_str());
      return 130;
    }
  } else {
    sweep::SweepHarness harness(runner, core::StudyOptions{}.repetitions,
                                core::StudyOptions{}.seed);
    const sweep::Dataset dataset = harness.run_study(plan, options);
    result = study.analyze(dataset, &pool);
    std::printf("collected %zu samples\n", result.dataset.size());
    if (harness.last_policy() && harness.last_policy()->total_retries() > 0) {
      std::printf("retries performed: %llu\n",
                  static_cast<unsigned long long>(
                      harness.last_policy()->total_retries()));
    }
  }
  const std::size_t quarantined = result.dataset.quarantined_count();
  if (quarantined > 0) {
    std::printf("quarantined %zu samples (excluded from analysis)\n",
                quarantined);
  }
  if (positional.size() > 1) {
    const std::string& out = positional[1];
    if (out.ends_with(".omps")) {
      result.dataset.save_store(out);
      std::printf("dataset stored to %s\n", out.c_str());
    } else {
      result.dataset.to_csv().write_file(out);
      std::printf("dataset written to %s\n", out.c_str());
    }
  }
  print_artifacts(result);
  return 0;
}

int cmd_coordinate(int argc, char** argv) {
  sweep::CoordinatorOptions options;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--hosts=")) {
      options.hosts = static_cast<int>(flag_value(arg, 8));
    } else if (util::starts_with(arg, "--shards=")) {
      options.shards = static_cast<std::size_t>(flag_value(arg, 9));
    } else if (util::starts_with(arg, "--dir=")) {
      options.work_dir = arg.substr(6);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (util::starts_with(arg, "--lease-ttl-ms=")) {
      options.lease_ttl_ms = flag_value(arg, 15);
    } else if (util::starts_with(arg, "--heartbeat-timeout-ms=")) {
      options.heartbeat_timeout_ms = flag_value(arg, 23);
    } else if (util::starts_with(arg, "--backoff-base-ms=")) {
      options.backoff.base_ms = flag_value(arg, 18);
    } else if (util::starts_with(arg, "--backoff-max-ms=")) {
      options.backoff.max_ms = flag_value(arg, 17);
    } else if (util::starts_with(arg, "--max-shard-attempts=")) {
      options.max_shard_attempts = static_cast<int>(flag_value(arg, 21));
    } else if (util::starts_with(arg, "--chaos=")) {
      options.chaos = sim::ChaosSpec::parse(arg.substr(8));
    } else if (arg == "--lenient") {
      options.lenient = true;
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "omptune coordinate: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  // Positionals: [configs] <out.omps>; a single .omps positional is the
  // output with configs at full scale.
  std::size_t configs = 0;
  std::string out;
  if (positional.size() == 1 && positional[0].ends_with(".omps")) {
    out = positional[0];
  } else if (positional.size() >= 2) {
    configs = std::stoul(positional[0]);
    out = positional[1];
  }
  if (out.empty()) {
    std::fprintf(stderr,
                 "omptune coordinate: an output store path is required\n");
    return usage();
  }
  if (!out.ends_with(".omps")) {
    std::fprintf(stderr,
                 "omptune coordinate: output must be an .omps store, got '%s'\n",
                 out.c_str());
    return usage();
  }
  if (options.resume && options.work_dir.empty()) {
    std::fprintf(stderr, "omptune coordinate: --resume requires --dir=<dir>\n");
    return usage();
  }

  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  if (configs > 0) {
    for (auto& arch_plan : plan.arch_plans) {
      for (auto& count : arch_plan.configs_per_setting) count = configs;
    }
  }

  sweep::Coordinator coordinator(
      [] { return std::make_unique<sim::ModelRunner>(); }, options);
  const sweep::Dataset dataset = coordinator.run(plan, out);
  const sweep::CoordinatorReport& report = coordinator.report();

  std::printf("collected %zu samples across %d host agents (%zu shards)\n",
              dataset.size(), coordinator.options().hosts,
              report.shards_total);
  if (report.shards_resumed > 0) {
    std::printf("resumed: %zu shards adopted from previous state\n",
                report.shards_resumed);
  }
  if (report.host_crashes + report.hang_kills + report.lease_expiries +
          report.protocol_errors + report.truncated_stores +
          report.duplicate_deliveries >
      0) {
    std::printf("host faults contained: %zu crashes, %zu hangs killed, "
                "%zu leases expired, %zu protocol errors, %zu truncated "
                "stores, %zu duplicate deliveries (%zu re-leases, %zu agent "
                "respawns, %lld ms backoff)\n",
                report.host_crashes, report.hang_kills, report.lease_expiries,
                report.protocol_errors, report.truncated_stores,
                report.duplicate_deliveries, report.re_leases, report.respawns,
                static_cast<long long>(report.backoff_ms_total));
  }
  for (const auto& q : report.quarantined_shards) {
    std::printf("quarantined shard %zu after %d attempts: %s\n", q.shard,
                q.attempts, q.evidence.c_str());
  }
  if (report.interrupted) {
    std::printf("coordination interrupted: %zu/%zu shards completed\n",
                report.shards_completed, report.shards_total);
    const std::string configs_arg =
        configs > 0 ? std::to_string(configs) + " " : "";
    std::printf("resume with: omptune coordinate %s%s --dir=%s --resume\n",
                configs_arg.c_str(), out.c_str(), report.work_dir.c_str());
    return 130;
  }
  if (!report.skipped_shard_stores.empty() || report.merge.skipped_settings > 0) {
    std::printf("lenient assembly skipped %zu shard store(s) and %zu "
                "setting(s):\n",
                report.skipped_shard_stores.size(),
                report.merge.skipped_settings);
    for (const auto& s : report.skipped_shard_stores) {
      std::printf("  store %s: %s\n", s.path.c_str(), s.reason.c_str());
    }
    for (const auto& s : report.merge.skipped) {
      const std::string from =
          s.shards.empty() ? std::string() : " (from " + s.shards + ")";
      std::printf("  setting %s: %s%s\n", s.key.c_str(), s.reason.c_str(),
                  from.c_str());
    }
  }
  std::printf("compaction: %zu shard stores, %zu tiers, %zu merges "
              "(%zu intermediates reused); %zu samples in, %zu stored, "
              "%zu duplicates dropped\n",
              report.compaction.inputs, report.compaction.tiers,
              report.compaction.merges, report.compaction.reused_intermediates,
              report.compaction.samples_in, report.compaction.samples_out,
              report.compaction.duplicates_dropped);
  const std::size_t quarantined = dataset.quarantined_count();
  if (quarantined > 0) {
    std::printf("quarantined samples retained: %zu\n", quarantined);
  }
  std::printf("dataset stored to %s\n", report.store_path.c_str());
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[2];
  const util::ThreadPool pool = make_analysis_pool();
  sim::ModelRunner runner;
  core::Study study(runner);
  if (path.ends_with(".omps")) {
    // Store path: speedup artefacts aggregate zero-copy off the column
    // slices; the ML artefacts' sample materialization is row-parallel.
    const store::StoreReader reader(path);
    std::printf("loaded %zu samples\n", reader.size());
    print_artifacts(study.analyze_store(reader, &pool));
    return 0;
  }
  const sweep::Dataset dataset =
      sweep::Dataset::from_csv(util::CsvTable::read_file(path));
  std::printf("loaded %zu samples\n", dataset.size());
  print_artifacts(study.analyze(dataset, &pool));
  return 0;
}

int cmd_compact(int argc, char** argv) {
  if (argc < 4) return usage();
  const sweep::StudyJournal journal(argv[2]);
  if (journal.entry_files().empty()) {
    std::fprintf(stderr, "omptune compact: no journal entries in %s\n", argv[2]);
    return 1;
  }
  const store::CompactReport report = journal.compact(argv[3]);
  std::printf("compacted %zu journal entries into %s\n", report.entries, argv[3]);
  std::printf("  samples: %zu in, %zu stored\n", report.samples_in,
              report.samples_out);
  std::printf("  duplicates dropped: %zu (%zu kept rows upgraded by a better "
              "status)\n",
              report.duplicates_dropped, report.replaced);
  if (report.quarantined > 0) {
    std::printf("  quarantined samples retained: %zu\n", report.quarantined);
  }
  return 0;
}

/// Print the knowledge-based outputs (variable priority, best known config,
/// strong variable/value pairs) for one (app, arch) pair.
void print_recommendation(const core::KnowledgeBase& kb,
                          const std::vector<analysis::Recommendation>& recs,
                          const std::string& app, const std::string& arch) {
  std::printf("variable priority (most influential first):\n ");
  for (const auto& v : kb.variable_priority(app, arch)) std::printf(" %s", v.c_str());
  std::printf("\n\n");
  try {
    std::printf("best known configuration (%.3fx over default):\n  %s\n",
                kb.best_known_speedup(app, arch),
                kb.best_known_config(app, arch).key().c_str());
  } catch (const std::invalid_argument&) {
    std::printf("no study samples for this (app, arch) pair\n");
  }
  if (!recs.empty()) {
    util::TextTable table("\nstrong variable/value pairs (lift >= 1.5):",
                          {"arch", "variable", "value", "lift"});
    for (const auto& rec : recs) {
      if (rec.lift < 1.5) continue;
      table.add_row({rec.arch, rec.variable, rec.value,
                     util::format_double(rec.lift, 2)});
    }
    std::printf("%s", table.render().c_str());
  }
}

/// `omptune query --remote=<socket> <app> <arch>`: the recommendation
/// answered by a running server in one round trip instead of opening the
/// store locally. Goes through the retrying client, so a shed, a deadline
/// miss or a server the Keeper is mid-restart on is absorbed by bounded
/// backoff instead of surfacing as a one-shot failure.
int query_remote(const std::string& socket_path, const std::string& app,
                 const std::string& arch, const serve::RetryPolicy& policy) {
  serve::RetryingClient client =
      serve::RetryingClient::over_unix(socket_path, policy);
  serve::Request request;
  request.type = serve::MsgType::Recommend;
  request.app = app;
  request.arch = arch;
  serve::Response reply;
  try {
    reply = client.call_one(request);
  } catch (const util::TransientError& error) {
    std::fprintf(stderr, "omptune query: %s\n", error.what());
    return 1;
  }
  if (reply.type == serve::MsgType::Error) {
    std::fprintf(stderr, "omptune query: server error: %s\n",
                 reply.message.c_str());
    return 1;
  }
  std::printf("served by %s (store generation %llu)\n", socket_path.c_str(),
              static_cast<unsigned long long>(reply.generation));
  std::printf("variable priority (most influential first):\n ");
  for (const auto& v : reply.variable_priority) std::printf(" %s", v.c_str());
  std::printf("\n\n");
  if (reply.found) {
    std::printf("best known configuration (%.3fx over default):\n  %s\n",
                reply.speedup, reply.config_key.c_str());
  } else {
    std::printf("no study samples for this (app, arch) pair\n");
    return 1;
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  std::string remote_socket;
  serve::RetryPolicy retry;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--remote=")) {
      remote_socket = arg.substr(9);
    } else if (util::starts_with(arg, "--retries=")) {
      retry.max_attempts = std::stoi(arg.substr(10));
    } else if (util::starts_with(arg, "--retry-timeout-ms=")) {
      retry.socket_timeout_ms = std::stoi(arg.substr(19));
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "omptune query: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (!remote_socket.empty()) {
    if (positional.size() < 2) return usage();
    return query_remote(remote_socket, positional[0], positional[1], retry);
  }
  if (positional.size() < 3) return usage();
  const std::string& path = positional[0];
  const std::string& app = positional[1];
  const std::string& arch = positional[2];

  const store::StoreReader reader(path);
  store::StoreQuery query;
  query.app = app;
  query.arch = arch;
  const sweep::Dataset slice = reader.query(query);
  const std::uint64_t runtime_total =
      static_cast<std::uint64_t>(reader.size()) * reader.repetitions() * 8;
  std::printf("store %s: %zu samples, %zu settings, %llu bytes\n", path.c_str(),
              reader.size(), reader.settings().size(),
              static_cast<unsigned long long>(reader.file_bytes()));
  std::printf("matched %zu samples for %s on %s "
              "(runtime bytes read: %llu of %llu)\n\n",
              slice.size(), app.c_str(), arch.c_str(),
              static_cast<unsigned long long>(reader.runtime_bytes_touched()),
              static_cast<unsigned long long>(runtime_total));
  if (slice.size() == 0) {
    std::printf("no samples for this (app, arch) pair in the store\n");
    return 1;
  }
  const util::ThreadPool pool = make_analysis_pool();
  const core::KnowledgeBase kb(reader, arch, 1.01, &pool);
  print_recommendation(
      kb, analysis::recommend_for_app(reader, app, 0.01, 1.3, &pool), app, arch);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions options;
  serve::KeeperOptions keeper_options;
  bool supervised = false;
  std::vector<std::string> stores;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--socket=")) {
      options.socket_path = arg.substr(9);
    } else if (util::starts_with(arg, "--tcp-port=")) {
      options.tcp_port = std::stoi(arg.substr(11));
    } else if (util::starts_with(arg, "--cache=")) {
      options.cache_capacity = std::stoul(arg.substr(8));
    } else if (util::starts_with(arg, "--max-pending=")) {
      options.max_pending = std::stoul(arg.substr(14));
    } else if (util::starts_with(arg, "--request-deadline-ms=")) {
      options.request_deadline_ms = std::stol(arg.substr(22));
    } else if (util::starts_with(arg, "--stall-timeout-ms=")) {
      options.stall_timeout_ms = std::stol(arg.substr(19));
    } else if (arg == "--no-admin") {
      options.allow_admin = false;
    } else if (arg == "--supervised") {
      supervised = true;
    } else if (util::starts_with(arg, "--hang-timeout-ms=")) {
      keeper_options.hang_timeout_ms = std::stol(arg.substr(18));
    } else if (util::starts_with(arg, "--max-restarts=")) {
      keeper_options.max_restarts = std::stoi(arg.substr(15));
    } else if (util::starts_with(arg, "--incident-log=")) {
      keeper_options.incident_log_path = arg.substr(15);
    } else if (util::starts_with(arg, "--pid-file=")) {
      keeper_options.pid_file = arg.substr(11);
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "omptune serve: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      stores.push_back(arg);
    }
  }
  if (stores.empty() || options.socket_path.empty()) {
    std::fprintf(stderr,
                 "omptune serve: need at least one store and --socket=<path>\n");
    return usage();
  }
  options.threads = g_analysis_threads;
  options.log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };
  if (supervised) {
    // The Keeper forks the server (each child installs its own signal
    // guard); here SIGINT/SIGTERM to the keeper itself become a graceful
    // request_stop — SIGTERM the child, wait out its drain, clean up the
    // socket and pid file.
    keeper_options.server = std::move(options);
    keeper_options.store_paths = stores;
    keeper_options.log = keeper_options.server.log;
    util::ShutdownSignalGuard guard;
    serve::Keeper keeper(std::move(keeper_options));
    std::thread watcher([&] {
      pollfd pfd{guard.wake_fd(), POLLIN, 0};
      while (!guard.triggered()) ::poll(&pfd, 1, 200);
      keeper.request_stop();
    });
    const int rc = keeper.run();
    guard.trigger();  // unblock the watcher when the child drained on its own
    watcher.join();
    return rc;
  }
  options.handle_signals = true;  // SIGINT drains instead of killing mid-reply
  serve::Server server(stores, std::move(options));
  server.run();
  return server.counters().drained_cleanly ? 0 : 1;
}

int cmd_serve_ctl(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string socket_path = argv[2];
  const std::string verb = argv[3];
  serve::Request request;
  if (verb == "stats") {
    request.type = serve::MsgType::Stats;
  } else if (verb == "swap") {
    request.type = serve::MsgType::Swap;
    for (int i = 4; i < argc; ++i) request.store_paths.push_back(argv[i]);
    if (request.store_paths.empty()) {
      std::fprintf(stderr, "omptune serve-ctl: swap needs store paths\n");
      return usage();
    }
  } else if (verb == "shutdown") {
    request.type = serve::MsgType::Shutdown;
  } else {
    return usage();
  }
  serve::Client client = serve::Client::connect_unix(socket_path);
  const serve::Response reply = client.call_one(request);
  switch (reply.type) {
    case serve::MsgType::StatsReply:
      std::printf("generation %llu: %llu rows across %u shard(s)\n",
                  static_cast<unsigned long long>(reply.generation),
                  static_cast<unsigned long long>(reply.store_rows),
                  reply.shards);
      std::printf("served %llu replies in %llu batches, shed %llu\n",
                  static_cast<unsigned long long>(reply.served),
                  static_cast<unsigned long long>(reply.batches),
                  static_cast<unsigned long long>(reply.shed));
      std::printf("cache: %llu hits, %llu misses\n",
                  static_cast<unsigned long long>(reply.cache_hits),
                  static_cast<unsigned long long>(reply.cache_misses));
      std::printf("connections: %llu accepted, %llu active; %llu swap(s)\n",
                  static_cast<unsigned long long>(reply.connections_accepted),
                  static_cast<unsigned long long>(reply.connections_active),
                  static_cast<unsigned long long>(reply.swaps));
      return 0;
    case serve::MsgType::SwapReply:
      std::printf("%s\n", reply.message.c_str());
      return reply.found ? 0 : 1;
    case serve::MsgType::ShutdownReply:
      std::printf("server draining\n");
      return 0;
    case serve::MsgType::Error:
      std::fprintf(stderr, "omptune serve-ctl: server error: %s\n",
                   reply.message.c_str());
      return 1;
    default:
      std::fprintf(stderr, "omptune serve-ctl: unexpected reply type %s\n",
                   serve::to_string(reply.type));
      return 1;
  }
}

int cmd_recommend(int argc, char** argv) {
  std::string store_path;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--store=")) {
      store_path = arg.substr(8);
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "omptune recommend: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) return usage();
  const std::string& app = positional[0];
  const std::string& arch = positional[1];
  apps::find_application(app);                  // validate
  arch::arch_from_string(arch);                 // validate

  const util::ThreadPool pool = make_analysis_pool();
  if (!store_path.empty()) {
    // Store-backed path: the index materializes only this architecture's
    // slice and this application's rows — no study re-run, no CSV parsing.
    const store::StoreReader reader(store_path);
    const core::KnowledgeBase kb(reader, arch, 1.01, &pool);
    print_recommendation(
        kb, analysis::recommend_for_app(reader, app, 0.01, 1.3, &pool), app,
        arch);
    return 0;
  }
  const sweep::Dataset dataset = quick_study(200);
  const core::KnowledgeBase kb(dataset, 1.01, &pool);
  print_recommendation(kb, analysis::recommend_for_app(dataset, app), app, arch);
  return 0;
}

int cmd_tune(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string app_name = argv[2];
  const std::string arch_name = argv[3];
  const std::string strategy = argc > 4 ? argv[4] : "hill";
  const std::size_t budget = argc > 5 ? std::stoul(argv[5]) : 64;

  const apps::Application& app = apps::find_application(app_name);
  const arch::CpuArch& cpu = arch::architecture(arch::arch_from_string(arch_name));
  const sweep::ConfigSpace space = sweep::ConfigSpace::paper_space(cpu);

  sim::ModelRunner runner;
  core::Tuner tuner(runner, app, app.default_input(), cpu);

  core::Tuner::SearchResult result;
  if (strategy == "hill") {
    const core::KnowledgeBase kb(quick_study(150));
    result = tuner.hill_climb(space, cpu.cores,
                              kb.variable_priority(app_name, arch_name));
  } else if (strategy == "random") {
    result = tuner.random_search(space, cpu.cores, budget);
  } else if (strategy == "anneal") {
    result = tuner.simulated_annealing(space, cpu.cores, budget);
  } else if (strategy == "exhaustive") {
    result = tuner.exhaustive(space, cpu.cores);
  } else {
    return usage();
  }
  std::printf("%s: %zu evaluations, speedup %.3fx over the default\n",
              strategy.c_str(), result.evaluations, result.speedup);
  std::printf("best configuration: %s\n", result.best_config.key().c_str());
  std::printf("export:\n");
  for (const auto& assignment : result.best_config.to_env(cpu)) {
    if (assignment.value) {
      std::printf("  export %s=%s\n", assignment.name.c_str(),
                  assignment.value->c_str());
    }
  }
  return 0;
}

int cmd_violin(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string app_name = argv[2];
  apps::find_application(app_name);  // validate

  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    std::vector<sweep::StudySetting> kept;
    std::vector<std::size_t> counts;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      if (arch_plan.settings[i].app->name() == app_name) {
        kept.push_back(arch_plan.settings[i]);
        counts.push_back(arch_plan.configs_per_setting[i]);
      }
    }
    arch_plan.settings = std::move(kept);
    arch_plan.configs_per_setting = std::move(counts);
  }
  const sweep::Dataset dataset = harness.run_study(plan);

  std::map<std::string, std::vector<double>> groups;
  for (const auto& s : dataset.samples()) {
    groups[s.arch + "/" + s.input + "/t" + std::to_string(s.threads)].push_back(
        s.mean_runtime);
  }
  for (const auto& [key, runtimes] : groups) {
    std::printf("\n--- %s (%zu configs, median %.3fs) ---\n", key.c_str(),
                runtimes.size(), stats::median(runtimes));
    std::printf("%s", stats::render_ascii_violin(runtimes, 10, 44).c_str());
  }
  return 0;
}

}  // namespace

rt::RtConfig parse_config_tokens(int argc, char** argv, int first,
                                 const arch::CpuArch& cpu) {
  std::vector<util::ScopedEnv::Assignment> assignments;
  for (int i = first; i < argc; ++i) {
    const auto parts = util::split(argv[i], '=');
    if (parts.size() != 2) {
      throw std::invalid_argument(std::string("bad config token '") + argv[i] +
                                  "' (expected NAME=value)");
    }
    assignments.push_back({parts[0], parts[1]});
  }
  const util::ScopedEnv env(std::move(assignments));
  return rt::RtConfig::from_env(cpu);
}

int cmd_model(int argc, char** argv) {
  if (argc < 4) return usage();
  const apps::Application& app = apps::find_application(argv[2]);
  const arch::CpuArch& cpu = arch::architecture(arch::arch_from_string(argv[3]));

  // Split --calibration=FILE from the NAME=value config tokens.
  rt::CalibrationTable calibration = rt::CalibrationTable::fallback();
  std::vector<char*> tokens;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--calibration=")) {
      calibration = rt::CalibrationTable::load(arg.substr(14));
    } else {
      tokens.push_back(argv[i]);
    }
  }
  const rt::RtConfig config = parse_config_tokens(
      static_cast<int>(tokens.size()), tokens.data(), 0, cpu);

  sim::PerfModel model(std::move(calibration));
  const sim::ModelBreakdown b =
      model.breakdown(app, app.default_input(), cpu, config);
  std::printf("config: %s\n\n", config.key().c_str());
  std::printf("predicted runtime: %.4f s\n", b.total_seconds);
  std::printf("  serial              %.4f s\n", b.serial_seconds);
  std::printf("  compute (parallel)  %.4f s\n", b.compute_seconds);
  std::printf("  memory  (parallel)  %.4f s\n", b.memory_seconds);
  std::printf("  region overhead     %.5f s\n", b.region_overhead_seconds);
  std::printf("  reductions          %.5f s\n", b.reduction_overhead_seconds);
  std::printf("  loop coordination   %.5f s\n", b.schedule_coordination_seconds);
  std::printf("factors: idle %.3f  imbalance %.3f  locality %.3f  contention %.3f"
              "  oversubscription %.3f  align %.3f\n",
              b.task_idle_factor, b.imbalance_factor, b.locality_factor,
              b.contention_factor, b.oversubscription_factor, b.align_factor);

  const sim::EnergyModel energy(model);
  const auto e = energy.estimate(app, app.default_input(), cpu, config);
  std::printf("\nenergy: %.0f W avg (%.0f W spinning) -> %.1f kJ, EDP %.1f kJ*s\n",
              e.avg_watts, e.spin_watts, e.joules / 1000.0, e.edp / 1000.0);
  return 0;
}

int cmd_threads(int argc, char** argv) {
  if (argc < 4) return usage();
  const apps::Application& app = apps::find_application(argv[2]);
  const arch::CpuArch& cpu = arch::architecture(arch::arch_from_string(argv[3]));
  sim::PerfModel model;
  const auto advice = core::advise_threads(model, app, app.default_input(), cpu,
                                           rt::RtConfig::defaults_for(cpu));
  for (const auto& point : advice.curve) {
    std::printf("  %3d threads: %8.3f s  speedup %6.2f  efficiency %.2f\n",
                point.threads, point.seconds, point.speedup_vs_one,
                point.parallel_efficiency);
  }
  std::printf("fastest: %d threads; recommended (within 5%%): %d threads\n",
              advice.fastest_threads, advice.recommended_threads);
  return 0;
}

int main(int argc, char** argv) {
  // --analysis-threads=N applies to every command; strip it here so the
  // per-command parsers only see their own arguments.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::starts_with(arg, "--analysis-threads=")) {
      const std::string value = arg.substr(19);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos ||
          std::stoul(value) < 1 || std::stoul(value) > 4096) {
        std::fprintf(stderr,
                     "omptune: --analysis-threads expects an integer in "
                     "[1, 4096], got '%s'\n",
                     value.c_str());
        return 2;
      }
      g_analysis_threads = static_cast<unsigned>(std::stoul(value));
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "study") return cmd_study(argc, argv);
    if (command == "coordinate") return cmd_coordinate(argc, argv);
    if (command == "analyze") return cmd_analyze(argc, argv);
    if (command == "compact") return cmd_compact(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "serve-ctl") return cmd_serve_ctl(argc, argv);
    if (command == "recommend") return cmd_recommend(argc, argv);
    if (command == "tune") return cmd_tune(argc, argv);
    if (command == "violin") return cmd_violin(argc, argv);
    if (command == "model") return cmd_model(argc, argv);
    if (command == "threads") return cmd_threads(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "omptune: %s\n", error.what());
    return 1;
  }
  return usage();
}
